"""Tests for the machine configuration (Table III parameters)."""

import pytest

from repro.config import AzulConfig, default_config, paper_config


class TestAzulConfig:
    def test_paper_configuration_matches_table3(self):
        config = paper_config()
        assert config.num_tiles == 4096
        assert config.frequency_hz == 2.0e9
        # 16 TFLOP/s peak: 1 FMAC/PE/cycle.
        assert config.peak_flops == pytest.approx(16.384e12)
        # 432 MB total SRAM: (72+36) KB x 4096.
        assert config.total_sram_bytes == 4096 * 108 * 1024
        # ~6 TB/s bisection: 256 links x 12 B x 2 GHz.
        assert config.bisection_bandwidth_bytes == pytest.approx(6.144e12)

    def test_default_is_scaled_down(self):
        config = default_config()
        assert config.num_tiles == 64
        assert config.peak_flops == pytest.approx(256e9)

    def test_sram_bandwidth(self):
        config = paper_config()
        # 192 TB/s aggregate: two 96-bit accesses per tile per cycle.
        assert config.sram_bandwidth_bytes == pytest.approx(196.6e12, rel=0.01)

    def test_scaled(self):
        config = default_config().scaled(2)
        assert config.mesh_rows == 16
        assert config.num_tiles == 256
        with pytest.raises(ValueError):
            default_config().scaled(0)

    def test_with_replaces_fields(self):
        config = default_config().with_(hop_cycles=3)
        assert config.hop_cycles == 3
        assert config.mesh_rows == default_config().mesh_rows

    def test_frozen(self):
        with pytest.raises(Exception):
            default_config().mesh_rows = 4

    @pytest.mark.parametrize("field,value", [
        ("mesh_rows", 0),
        ("hop_cycles", 0),
        ("sram_access_cycles", 0),
        ("topology", "ring"),
    ])
    def test_invalid_parameters_rejected(self, field, value):
        with pytest.raises(ValueError):
            AzulConfig(**{field: value})

"""Tests for the analytic Azul performance model."""

import numpy as np
import pytest

from repro.comm import TorusGeometry
from repro.config import AzulConfig
from repro.core import map_azul, map_round_robin
from repro.hypergraph import PartitionerOptions
from repro.models.azul_analytic import (
    KernelPrediction,
    predict_iteration,
    predict_spmv,
    predict_sptrsv,
)
from repro.precond import ic0
from repro.sim import AzulMachine
from repro.sparse import generators as gen


@pytest.fixture(scope="module")
def operands():
    matrix = gen.random_geometric_fem(70, avg_degree=6, dofs_per_node=1,
                                      seed=31)
    lower = ic0(matrix)
    b = gen.make_rhs(matrix, seed=32)
    return matrix, lower, b


CONFIG = AzulConfig(mesh_rows=4, mesh_cols=4)
TORUS = TorusGeometry(4, 4)


class TestKernelPrediction:
    def test_cycles_is_max_of_bounds_plus_startup(self):
        prediction = KernelPrediction(
            name="spmv", compute_bound=100, network_bound=250,
            critical_path=80, startup=10,
        )
        assert prediction.cycles == 260
        assert prediction.dominant_bound() == "network"

    def test_dominant_bound_labels(self):
        assert KernelPrediction("k", 10, 1, 1, 0).dominant_bound() == \
            "compute"
        assert KernelPrediction("k", 1, 1, 10, 0).dominant_bound() == \
            "dependences"


class TestPredictions:
    def test_spmv_prediction_is_lower_bound_ish(self, operands):
        """The bound model must not exceed ~the simulator and must be
        positive."""
        matrix, lower, b = operands
        placement = map_round_robin(matrix, lower, 16)
        prediction = predict_spmv(matrix, placement, TORUS, CONFIG)
        assert prediction.cycles > 0
        simulated = AzulMachine(CONFIG).simulate_pcg(
            matrix, lower, placement, b, check=False
        )
        spmv_sim = simulated.kernel_results[0].cycles
        assert prediction.cycles <= 2.0 * spmv_sim

    def test_sptrsv_has_dependence_bound(self, operands):
        matrix, lower, _ = operands
        placement = map_round_robin(matrix, lower, 16)
        prediction = predict_sptrsv(lower, placement, TORUS, CONFIG)
        assert prediction.critical_path > 0

    def test_iteration_prediction_ranks_mappings(self, operands):
        """The model's purpose: rank mappings without simulating."""
        matrix, lower, _ = operands
        rr = map_round_robin(matrix, lower, 16)
        azul = map_azul(
            matrix, lower, 16, options=PartitionerOptions.speed(seed=7)
        )
        rr_prediction = predict_iteration(matrix, lower, rr, CONFIG)
        azul_prediction = predict_iteration(matrix, lower, azul, CONFIG)
        assert azul_prediction.total_cycles < rr_prediction.total_cycles
        assert azul_prediction.gflops() > rr_prediction.gflops()

    def test_prediction_correlates_with_simulation(self, operands):
        matrix, lower, b = operands
        machine = AzulMachine(CONFIG)
        predicted = []
        simulated = []
        for mapper in (map_round_robin,):
            placement = mapper(matrix, lower, 16)
            predicted.append(
                predict_iteration(matrix, lower, placement, CONFIG)
                .total_cycles
            )
            simulated.append(
                machine.simulate_pcg(matrix, lower, placement, b,
                                     check=False).total_cycles
            )
        # Single-point sanity: prediction within a small factor.
        assert 0.2 * simulated[0] < predicted[0] < 2.0 * simulated[0]

    def test_flops_match_algorithm(self, operands):
        matrix, lower, _ = operands
        placement = map_round_robin(matrix, lower, 16)
        prediction = predict_iteration(matrix, lower, placement, CONFIG)
        from repro.sparse.ops import spmv_flops, sptrsv_flops

        expected = (
            spmv_flops(matrix) + 2 * sptrsv_flops(lower)
            + 2 * matrix.n_rows * 6
        )
        assert prediction.flops == expected

"""Shared fixtures and helpers for the test suite."""

import os

import numpy as np
import pytest

from repro.sparse import generators as gen


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Point the artifact cache at a throwaway directory for the whole run.

    Keeps the suite hermetic: tests never read a developer's (possibly
    stale or corrupt) ``.cache/`` tree and never pollute it either.
    Individual tests can still monkeypatch ``REPRO_CACHE_DIR`` to their
    own ``tmp_path``; ``ArtifactCache.default()`` keys its registry on
    the env fingerprint, so overrides take effect immediately.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    root = tmp_path_factory.mktemp("repro-cache")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    try:
        yield root
    finally:
        if previous is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_spd():
    """A small SPD matrix with unstructured sparsity."""
    return gen.random_spd(40, nnz_per_row=4, seed=7)


@pytest.fixture
def grid_matrix():
    """A 2D grid Laplacian (spatially correlated pattern)."""
    return gen.grid_laplacian_2d(8, 8)


@pytest.fixture
def mesh_matrix():
    """A small unstructured FEM-like mesh matrix."""
    return gen.random_geometric_fem(30, avg_degree=5, dofs_per_node=2, seed=3)


def random_csr(rng, n_rows=12, n_cols=10, density=0.25):
    """Build a random (non-symmetric) CSR matrix for format tests."""
    from repro.sparse import COOMatrix, coo_to_csr

    mask = rng.random((n_rows, n_cols)) < density
    rows, cols = np.nonzero(mask)
    data = rng.standard_normal(len(rows))
    return coo_to_csr(COOMatrix(rows, cols, data, (n_rows, n_cols)))

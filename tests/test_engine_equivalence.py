"""Batched-engine equivalence suite (the PR's bit-exactness guarantee).

The batched simulator (:class:`BatchedKernelSimulator`) must reproduce
the per-op reference engine *exactly* — same cycles, op counts, issue
slots, link statistics, spills, queue delay, numeric output (IEEE
bit-identical) and issue-trace multiset — across matrices, meshes, PE
models and kernels.  Any event-ordering or hazard-modelling drift in
the fast path shows up here first.
"""

import os

import numpy as np
import pytest

from repro.comm import MeshGeometry, TorusGeometry, make_geometry
from repro.config import AzulConfig
from repro.core import map_block
from repro.dataflow import build_spmv_program, build_sptrsv_program
from repro.precond import ic0
from repro.sim import KernelSimulator
from repro.sim.engine import (
    _VEC_THRESHOLD,
    REFERENCE_ENV,
    BatchedKernelSimulator,
    ReferenceKernelSimulator,
)
from repro.sim.pe import (
    AZUL_PE,
    AZUL_PE_SINGLE_THREADED,
    DALOREX_PE,
    IDEAL_PE,
)
from repro.sparse import generators as gen

PES = {
    "azul": AZUL_PE,
    "azul_single": AZUL_PE_SINGLE_THREADED,
    "dalorex": DALOREX_PE,
    "ideal": IDEAL_PE,
}

_MATRICES = {}


def _matrix(kind):
    if kind not in _MATRICES:
        if kind == "fem":
            matrix = gen.random_geometric_fem(
                120, avg_degree=7, dofs_per_node=2, seed=21
            )
        elif kind == "spd":
            matrix = gen.random_spd(120, nnz_per_row=6, seed=5)
        else:
            matrix = gen.grid_laplacian_2d(12, 12)
        _MATRICES[kind] = (matrix, ic0(matrix))
    return _MATRICES[kind]


def _programs(kind, rows, cols, topology="torus"):
    matrix, lower = _matrix(kind)
    config = AzulConfig(mesh_rows=rows, mesh_cols=cols, topology=topology)
    torus = make_geometry(config)
    assert isinstance(
        torus, TorusGeometry if topology == "torus" else MeshGeometry
    )
    placement = map_block(matrix, lower, rows * cols)
    spmv = build_spmv_program(matrix, placement.a_tile, placement.vec_tile,
                              torus)
    sptrsv = build_sptrsv_program(lower, placement.l_tile,
                                  placement.vec_tile, torus)
    return matrix, torus, config, spmv, sptrsv


def _assert_equivalent(program, torus, config, pe, x=None, b=None):
    reference = ReferenceKernelSimulator(
        program, torus, config, pe, record_issue_trace=True
    ).run(x, b)
    batched = BatchedKernelSimulator(
        program, torus, config, pe, record_issue_trace=True
    ).run(x, b)
    assert batched.cycles == reference.cycles
    assert batched.op_counts == reference.op_counts
    assert batched.busy_slots == reference.busy_slots
    assert batched.link_activations == reference.link_activations
    assert batched.per_link == reference.per_link
    assert batched.spills == reference.spills
    assert batched.link_queue_delay == reference.link_queue_delay
    # IEEE bit identity, not tolerance: the batched accumulation must
    # apply ops in the exact reference order.
    assert np.array_equal(batched.output, reference.output)
    assert sorted(map(tuple, batched.issue_trace)) \
        == sorted(map(tuple, reference.issue_trace))


@pytest.mark.parametrize("topology", ["torus", "mesh"])
@pytest.mark.parametrize("pe_name", sorted(PES))
@pytest.mark.parametrize("kind,rows,cols", [
    ("fem", 4, 4),
    ("spd", 4, 4),
    ("grid", 2, 2),   # tiny mesh: heavy window competition per tile
])
@pytest.mark.parametrize("kernel", ["spmv", "sptrsv"])
def test_engine_equivalence(kind, rows, cols, pe_name, kernel, topology):
    """Bit-identity must hold on both geometries the fabric supports."""
    matrix, torus, config, spmv, sptrsv = _programs(kind, rows, cols,
                                                    topology)
    rng = np.random.default_rng(99)
    if kernel == "spmv":
        _assert_equivalent(spmv, torus, config, PES[pe_name],
                           x=rng.standard_normal(matrix.shape[0]))
    else:
        _assert_equivalent(sptrsv, torus, config, PES[pe_name],
                           b=rng.standard_normal(matrix.shape[0]))


def test_mesh_and_torus_timing_differ():
    """Sanity: the mesh geometry actually changes NoC timing (so the
    mesh arm of the equivalence matrix is not vacuously identical)."""
    matrix, torus, config, spmv_t, _ = _programs("fem", 4, 4, "torus")
    _, mesh, mconfig, spmv_m, _ = _programs("fem", 4, 4, "mesh")
    x = np.ones(matrix.shape[0])
    torus_cycles = BatchedKernelSimulator(
        spmv_t, torus, config, AZUL_PE).run(x=x).cycles
    mesh_cycles = BatchedKernelSimulator(
        spmv_m, mesh, mconfig, AZUL_PE).run(x=x).cycles
    assert torus_cycles != mesh_cycles


def test_equivalence_exercises_vectorized_batches():
    """The fem case must actually hit the numpy batch path.

    A 2x2 mesh concentrates whole matrix columns on each tile, so at
    least one column-segment run must exceed ``_VEC_THRESHOLD`` — the
    analytic completion-time kernel (not just the scalar fast-forward)
    is therefore covered by the equivalence assertion below.
    """
    matrix, torus, config, spmv, _ = _programs("fem", 2, 2)
    longest = max(
        len(rows)
        for segments in spmv.col_segments.values()
        for rows, _ in segments.values()
    )
    assert longest >= _VEC_THRESHOLD
    x = np.ones(matrix.shape[0])
    _assert_equivalent(spmv, torus, config, AZUL_PE, x=x)


def test_reference_env_escape_hatch(monkeypatch):
    """``AZUL_SIM_REFERENCE=1`` flips the default engine."""
    matrix, torus, config, spmv, _ = _programs("grid", 2, 2)
    monkeypatch.delenv(REFERENCE_ENV, raising=False)
    assert isinstance(
        KernelSimulator(spmv, torus, config, AZUL_PE),
        BatchedKernelSimulator,
    )
    monkeypatch.setenv(REFERENCE_ENV, "1")
    assert isinstance(
        KernelSimulator(spmv, torus, config, AZUL_PE),
        ReferenceKernelSimulator,
    )
    monkeypatch.setenv(REFERENCE_ENV, "0")
    assert isinstance(
        KernelSimulator(spmv, torus, config, AZUL_PE),
        BatchedKernelSimulator,
    )


def test_explicit_engine_argument():
    matrix, torus, config, spmv, _ = _programs("grid", 2, 2)
    assert isinstance(
        KernelSimulator(spmv, torus, config, AZUL_PE, engine="reference"),
        ReferenceKernelSimulator,
    )
    with pytest.raises(ValueError):
        KernelSimulator(spmv, torus, config, AZUL_PE, engine="warp")

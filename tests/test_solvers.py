"""Tests for the iterative solvers."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.precond import (
    IncompleteCholesky,
    IncompleteLU,
    JacobiPreconditioner,
    SymmetricGaussSeidel,
)
from repro.solvers import (
    SolveOptions,
    bicgstab,
    conjugate_gradient,
    gmres,
    kernels_for,
    pcg,
    power_iteration,
    solver_table,
)
from repro.sparse import generators as gen


@pytest.fixture
def system(small_spd):
    b, x_true = gen.make_rhs_with_solution(small_spd, seed=11)
    return small_spd, b, x_true


class TestPCG:
    def test_solves_system(self, system):
        matrix, b, x_true = system
        result = pcg(matrix, b, IncompleteCholesky(matrix))
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-6)

    def test_residual_criterion(self, system):
        matrix, b, _ = system
        options = SolveOptions(tol=1e-8)
        result = pcg(matrix, b, options=options)
        assert result.residual_norm <= 1e-8 * np.linalg.norm(b)

    def test_preconditioner_reduces_iterations(self):
        matrix = gen.grid_laplacian_2d(16, 16, shift=0.01)
        b = gen.make_rhs(matrix, seed=5)
        plain = pcg(matrix, b)
        preconditioned = pcg(matrix, b, IncompleteCholesky(matrix))
        assert preconditioned.converged
        assert preconditioned.iterations < plain.iterations

    def test_jacobi_preconditioner(self, system):
        matrix, b, x_true = system
        result = pcg(matrix, b, JacobiPreconditioner(matrix))
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-6)

    def test_symgs_preconditioner(self, system):
        matrix, b, x_true = system
        result = pcg(matrix, b, SymmetricGaussSeidel(matrix))
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-6)

    def test_flop_accounting(self, system):
        matrix, b, _ = system
        result = pcg(matrix, b, IncompleteCholesky(matrix))
        # One SpMV per iteration: 2*nnz FLOPs each.
        assert result.flops["spmv"] >= result.iterations * 2 * matrix.nnz
        assert result.flops["sptrsv"] > 0  # from the IC(0) solves
        assert result.flops["vector"] > 0
        assert result.total_flops == sum(result.flops.values())

    def test_history_recorded(self, system):
        matrix, b, _ = system
        result = pcg(matrix, b)
        assert len(result.history) == result.iterations + 1
        assert result.history.residuals[-1] <= result.history.residuals[0]

    def test_history_disabled(self, system):
        matrix, b, _ = system
        result = pcg(matrix, b, options=SolveOptions(record_history=False))
        assert len(result.history) == 0

    def test_initial_guess(self, system):
        matrix, b, x_true = system
        result = pcg(matrix, b, x0=x_true)
        assert result.converged
        assert result.iterations == 0

    def test_iteration_budget(self, system):
        matrix, b, _ = system
        result = pcg(matrix, b, options=SolveOptions(max_iterations=2))
        assert not result.converged
        assert result.iterations == 2

    def test_raise_on_divergence(self, system):
        matrix, b, _ = system
        with pytest.raises(ConvergenceError) as excinfo:
            pcg(
                matrix, b,
                options=SolveOptions(max_iterations=1),
                raise_on_divergence=True,
            )
        assert excinfo.value.result.iterations == 1

    def test_zero_rhs(self, small_spd):
        result = pcg(small_spd, np.zeros(small_spd.n_rows))
        assert result.converged
        assert result.iterations == 0
        assert np.allclose(result.x, 0.0)

    def test_works_after_coloring_permutation(self):
        """The paper permutes all inputs; PCG must still converge."""
        from repro.graph import color_and_permute, inverse_permutation

        matrix = gen.random_geometric_fem(40, avg_degree=6, seed=2)
        b, x_true = gen.make_rhs_with_solution(matrix, seed=3)
        permuted, permuted_b, perm = color_and_permute(matrix, b)
        result = pcg(permuted, permuted_b, IncompleteCholesky(permuted))
        assert result.converged
        # Undo the permutation and compare against the original solution.
        x_recovered = result.x[inverse_permutation(perm)]
        assert np.allclose(x_recovered, x_true, atol=1e-6)


class TestCG:
    def test_matches_pcg_identity(self, system):
        matrix, b, _ = system
        assert np.allclose(
            conjugate_gradient(matrix, b).x, pcg(matrix, b).x
        )


class TestBiCGStab:
    def test_solves_spd_system(self, system):
        matrix, b, x_true = system
        result = bicgstab(matrix, b)
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-5)

    def test_solves_nonsymmetric_system(self, rng):
        """BiCGStab's reason to exist: non-symmetric systems."""
        from repro.sparse import COOMatrix, coo_to_csr

        n = 30
        dense = np.eye(n) * 4.0 + np.triu(rng.standard_normal((n, n)), 1) * 0.3
        dense += np.tril(rng.standard_normal((n, n)), -1) * 0.1
        matrix = coo_to_csr(COOMatrix.from_dense(dense))
        x_true = rng.standard_normal(n)
        result = bicgstab(matrix, matrix.spmv(x_true))
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-5)

    def test_with_ilu_preconditioner(self, system):
        matrix, b, x_true = system
        result = bicgstab(matrix, b, IncompleteLU(matrix))
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-5)
        assert result.flops["sptrsv"] > 0


class TestGMRES:
    def test_solves_spd_system(self, system):
        matrix, b, x_true = system
        result = gmres(matrix, b)
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-5)

    def test_restart_still_converges(self, system):
        matrix, b, x_true = system
        result = gmres(matrix, b, restart=5)
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-5)

    def test_with_preconditioner(self, system):
        matrix, b, x_true = system
        plain = gmres(matrix, b, restart=10)
        preconditioned = gmres(
            matrix, b, IncompleteCholesky(matrix), restart=10
        )
        assert preconditioned.converged
        assert preconditioned.iterations <= plain.iterations
        assert np.allclose(preconditioned.x, x_true, atol=1e-5)


class TestPowerIteration:
    def test_finds_dominant_eigenvalue(self, small_spd):
        result = power_iteration(small_spd, tol=1e-12)
        assert result.converged
        expected = np.linalg.eigvalsh(small_spd.to_dense()).max()
        assert np.isclose(result.eigenvalue, expected, rtol=1e-6)

    def test_eigenvector_residual(self, small_spd):
        result = power_iteration(small_spd, tol=1e-12)
        residual = (
            small_spd.spmv(result.eigenvector)
            - result.eigenvalue * result.eigenvector
        )
        assert np.linalg.norm(residual) < 1e-4


class TestRegistry:
    def test_table_has_nine_rows(self):
        assert len(solver_table()) == 9

    def test_cg_ic_uses_both_kernels(self):
        kernels = kernels_for("Conjugate Gradients", "Incomplete Cholesky")
        assert kernels == ("SpMV", "SpTRSV")

    def test_power_iteration_spmv_only(self):
        assert kernels_for("Power Iteration") == ("SpMV",)

    def test_unknown_combination(self):
        with pytest.raises(KeyError):
            kernels_for("Conjugate Gradients", "Multigrid")

    def test_every_row_covered_by_kernels(self):
        """Table II's point: SpMV+SpTRSV cover every solver listed."""
        for spec in solver_table():
            assert set(spec.kernels) <= {"SpMV", "SpTRSV"}

"""Tests for the preconditioner family."""

import numpy as np
import pytest

from repro.errors import PreconditionerError
from repro.precond import (
    IdentityPreconditioner,
    IncompleteCholesky,
    IncompleteLU,
    JacobiPreconditioner,
    SSORPreconditioner,
    SymmetricGaussSeidel,
    ic0,
    ilu0,
)
from repro.sparse import generators as gen
from repro.sparse import is_lower_triangular, is_upper_triangular


class TestIdentity:
    def test_is_noop(self, rng):
        r = rng.standard_normal(10)
        z = IdentityPreconditioner().apply(r)
        assert np.array_equal(z, r)
        assert z is not r  # must not alias the input

    def test_no_factors(self):
        p = IdentityPreconditioner()
        assert p.lower_factor() is None
        assert p.upper_factor() is None


class TestJacobi:
    def test_apply(self, small_spd, rng):
        r = rng.standard_normal(small_spd.n_rows)
        z = JacobiPreconditioner(small_spd).apply(r)
        assert np.allclose(z, r / small_spd.diagonal())

    def test_rejects_zero_diagonal(self):
        from repro.sparse import COOMatrix, coo_to_csr

        matrix = coo_to_csr(COOMatrix([0, 1], [1, 0], [1.0, 1.0], (2, 2)))
        with pytest.raises(PreconditionerError):
            JacobiPreconditioner(matrix)


class TestIC0:
    def test_exact_on_tridiagonal(self):
        """IC(0) of a tridiagonal SPD matrix is the exact Cholesky factor
        (no fill-in exists to discard)."""
        matrix = gen.tridiagonal_spd(15)
        lower = ic0(matrix)
        exact = np.linalg.cholesky(matrix.to_dense())
        assert np.allclose(lower.to_dense(), exact, atol=1e-12)

    def test_pattern_matches_lower_triangle(self, mesh_matrix):
        lower = ic0(mesh_matrix)
        reference = mesh_matrix.lower_triangle()
        assert np.array_equal(lower.indptr, reference.indptr)
        assert np.array_equal(lower.indices, reference.indices)

    def test_factor_is_lower_triangular(self, small_spd):
        assert is_lower_triangular(ic0(small_spd))

    def test_llt_approximates_a(self, small_spd):
        """On the kept pattern, L L^T must reproduce A closely."""
        lower = ic0(small_spd)
        product = lower.to_dense() @ lower.to_dense().T
        dense = small_spd.to_dense()
        mask = dense != 0
        assert np.allclose(product[mask], dense[mask], rtol=1e-6, atol=1e-8)

    def test_apply_reduces_error(self, small_spd, rng):
        """M^{-1} A should be much better conditioned than A."""
        precond = IncompleteCholesky(small_spd)
        dense = small_spd.to_dense()
        m_inv_a = np.array(
            [precond.apply(dense[:, j]) for j in range(dense.shape[0])]
        ).T
        cond_before = np.linalg.cond(dense)
        cond_after = np.linalg.cond(m_inv_a)
        assert cond_after < cond_before * 1.01

    def test_factors_exposed(self, small_spd):
        precond = IncompleteCholesky(small_spd)
        assert is_lower_triangular(precond.lower_factor())
        assert is_upper_triangular(precond.upper_factor())
        assert precond.kernels == ("sptrsv", "sptrsv")


class TestILU0:
    def test_exact_on_tridiagonal(self):
        matrix = gen.tridiagonal_spd(12)
        lower, upper = ilu0(matrix)
        product = lower.to_dense() @ upper.to_dense()
        assert np.allclose(product, matrix.to_dense(), atol=1e-10)

    def test_unit_lower_diagonal(self, small_spd):
        lower, _ = ilu0(small_spd)
        assert np.allclose(lower.diagonal(), 1.0)

    def test_apply_consistency(self, small_spd, rng):
        precond = IncompleteLU(small_spd)
        r = rng.standard_normal(small_spd.n_rows)
        z = precond.apply(r)
        lower, upper = precond.lower_factor(), precond.upper_factor()
        assert np.allclose(lower.to_dense() @ (upper.to_dense() @ z), r)


class TestSymGSAndSSOR:
    def test_symgs_apply_matches_formula(self, small_spd, rng):
        precond = SymmetricGaussSeidel(small_spd)
        r = rng.standard_normal(small_spd.n_rows)
        z = precond.apply(r)
        dense = small_spd.to_dense()
        diag = np.diag(np.diag(dense))
        lower = np.tril(dense)
        upper = np.triu(dense)
        m = lower @ np.linalg.inv(diag) @ upper
        assert np.allclose(m @ z, r)

    def test_ssor_omega_one_matches_symgs(self, small_spd, rng):
        r = rng.standard_normal(small_spd.n_rows)
        symgs = SymmetricGaussSeidel(small_spd).apply(r)
        ssor = SSORPreconditioner(small_spd, omega=1.0).apply(r)
        assert np.allclose(symgs, ssor)

    def test_ssor_rejects_bad_omega(self, small_spd):
        with pytest.raises(PreconditionerError):
            SSORPreconditioner(small_spd, omega=2.5)
        with pytest.raises(PreconditionerError):
            SSORPreconditioner(small_spd, omega=0.0)

    def test_ssor_apply_matches_formula(self, small_spd, rng):
        omega = 1.4
        precond = SSORPreconditioner(small_spd, omega=omega)
        r = rng.standard_normal(small_spd.n_rows)
        z = precond.apply(r)
        dense = small_spd.to_dense()
        diag = np.diag(np.diag(dense))
        strict_lower = np.tril(dense, k=-1)
        strict_upper = np.triu(dense, k=1)
        m = (
            (diag / omega + strict_lower)
            @ np.linalg.inv(diag * ((2 - omega) / omega))
            @ (diag / omega + strict_upper)
        )
        assert np.allclose(m @ z, r)

"""Tests for reverse Cuthill-McKee ordering."""

import numpy as np
import pytest

from repro.graph import rcm_ordering, symmetric_permute
from repro.sparse import generators as gen
from repro.sparse.properties import bandwidth


class TestRCM:
    def test_is_a_permutation(self, mesh_matrix):
        perm = rcm_ordering(mesh_matrix)
        assert np.array_equal(np.sort(perm), np.arange(mesh_matrix.n_rows))

    def test_reduces_bandwidth_on_shuffled_grid(self, rng):
        """RCM's raison d'etre: recover a narrow band from a scramble."""
        matrix = gen.grid_laplacian_2d(10, 10)
        shuffle = rng.permutation(matrix.n_rows)
        scrambled = symmetric_permute(matrix, shuffle)
        ordered = symmetric_permute(scrambled, rcm_ordering(scrambled))
        assert bandwidth(ordered) < bandwidth(scrambled)

    def test_handles_disconnected_components(self):
        from repro.sparse import COOMatrix, coo_to_csr

        # Two disjoint 3-cycles plus diagonals.
        rows = [0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5]
        cols = [1, 2, 0, 4, 5, 3, 0, 1, 2, 3, 4, 5]
        vals = [1.0] * 6 + [3.0] * 6
        coo = COOMatrix(rows + cols[:6], cols + rows[:6],
                        vals + vals[:6], (6, 6))
        matrix = coo_to_csr(coo.sum_duplicates())
        perm = rcm_ordering(matrix)
        assert np.array_equal(np.sort(perm), np.arange(6))

    def test_deterministic(self, mesh_matrix):
        assert np.array_equal(
            rcm_ordering(mesh_matrix), rcm_ordering(mesh_matrix)
        )

    def test_ordering_study_shape(self):
        """Coloring wins parallelism; RCM wins bandwidth (ord_study)."""
        from repro.experiments import ord_study

        result = ord_study.run(matrices=["consph", "thermal2"])
        for row in result.rows:
            assert row["par_colored"] >= row["par_rcm"]

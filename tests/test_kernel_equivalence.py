"""Level-scheduled kernel-engine equivalence suite.

The level-scheduled engine (:class:`LevelScheduledKernels`) must be a
drop-in replacement for the per-row reference loops: same results to
rounding (bit-identical where the summation order is preserved), same
exception classes/messages on malformed factors, schedules that track
in-place value mutation yet never leak across structural replacement,
and PCG runs whose residual histories match the reference engine.
"""

import numpy as np
import pytest

from repro.config import ENV_SOLVER_REFERENCE
from repro.errors import (
    NotTriangularError,
    PreconditionerError,
    SingularMatrixError,
)
from repro.precond.ic0 import IncompleteCholesky, ic0
from repro.solvers.base import SolveOptions
from repro.solvers.kernels import KernelCounter
from repro.solvers.pcg import pcg
from repro.sparse import generators as gen
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import (
    KERNELS,
    LevelScheduledKernels,
    ReferenceKernels,
    default_kernels_name,
    resolve_kernels,
    sptrsv_flops,
)
from repro.sparse.schedule import triangular_schedule
from repro.sparse.suite import get_suite_matrix

REF = KERNELS["reference"]
LVL = KERNELS["level"]

MATRIX_KINDS = ["fem", "spd", "grid"]


def _matrix(kind):
    if kind == "fem":
        return gen.random_geometric_fem(
            100, avg_degree=7, dofs_per_node=2, seed=3
        )
    if kind == "spd":
        return gen.random_spd(150, nnz_per_row=6, seed=11)
    return gen.grid_laplacian_2d(14, 14)


def _copy(matrix):
    return CSRMatrix(
        matrix.indptr.copy(), matrix.indices.copy(), matrix.data.copy(),
        matrix.shape,
    )


def _bidiagonal(n=40, seed=0):
    """Rows with at most one off-diagonal entry: order-preserved case."""
    rng = np.random.default_rng(seed)
    rows = [0]
    cols = [0]
    vals = [2.0]
    for i in range(1, n):
        rows += [i, i]
        cols += [i - 1, i]
        vals += [float(rng.standard_normal()), 2.0 + float(rng.random())]
    return coo_to_csr(COOMatrix(rows, cols, vals, (n, n)))


# ----------------------------------------------------------------------
# Numeric parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", MATRIX_KINDS)
def test_sptrsv_parity(kind):
    matrix = _matrix(kind)
    lower = matrix.lower_triangle()
    upper = lower.transpose()
    rng = np.random.default_rng(7)
    b = rng.standard_normal(lower.n_rows)
    for unit in (False, True):
        x_ref = REF.sptrsv_lower(lower, b, unit_diagonal=unit)
        x_lvl = LVL.sptrsv_lower(lower, b, unit_diagonal=unit)
        np.testing.assert_allclose(x_lvl, x_ref, rtol=1e-12, atol=0)
        y_ref = REF.sptrsv_upper(upper, b, unit_diagonal=unit)
        y_lvl = LVL.sptrsv_upper(upper, b, unit_diagonal=unit)
        np.testing.assert_allclose(y_lvl, y_ref, rtol=1e-12, atol=0)


def test_sptrsv_bit_identical_when_order_preserved():
    """Rows with one off-diagonal entry admit no reassociation: the
    engines must agree to the bit, not just to rounding."""
    lower = _bidiagonal()
    upper = lower.transpose()
    b = np.linspace(-3.0, 5.0, lower.n_rows)
    assert np.array_equal(
        LVL.sptrsv_lower(lower, b), REF.sptrsv_lower(lower, b)
    )
    assert np.array_equal(
        LVL.sptrsv_upper(upper, b), REF.sptrsv_upper(upper, b)
    )


@pytest.mark.parametrize("kind", MATRIX_KINDS)
def test_ic0_parity(kind):
    lower = _matrix(kind).lower_triangle()
    d_ref = REF.ic0_attempt(lower, 0.0)
    d_lvl = LVL.ic0_attempt(lower, 0.0)
    assert d_ref is not None and d_lvl is not None
    np.testing.assert_allclose(d_lvl, d_ref, rtol=1e-12, atol=0)
    # Shifted attempts agree too (the retry path factors shifted data).
    np.testing.assert_allclose(
        LVL.ic0_attempt(lower, 1e-3), REF.ic0_attempt(lower, 1e-3),
        rtol=1e-12, atol=0,
    )


def test_ic0_shift_retry_equivalence():
    """An indefinite 2x2 breaks down identically in both engines and
    factors identically once the shift is large enough."""
    matrix = coo_to_csr(COOMatrix(
        [0, 1, 1], [0, 0, 1], [1.0, 2.0, 1.0], (2, 2)
    ))
    with pytest.raises(PreconditionerError):
        ic0(matrix, kernels="reference")
    with pytest.raises(PreconditionerError):
        ic0(matrix, kernels="level")
    f_ref = ic0(matrix, max_shift_attempts=12, kernels="reference")
    f_lvl = ic0(matrix, max_shift_attempts=12, kernels="level")
    np.testing.assert_array_equal(f_lvl.data, f_ref.data)


# ----------------------------------------------------------------------
# Error equivalence
# ----------------------------------------------------------------------
def _raises_same(fn_ref, fn_lvl, exc_type):
    with pytest.raises(exc_type) as ref_info:
        fn_ref()
    with pytest.raises(exc_type) as lvl_info:
        fn_lvl()
    assert str(lvl_info.value) == str(ref_info.value)


def test_not_triangular_errors_match():
    matrix = _matrix("spd")  # full symmetric matrix: not triangular
    b = np.ones(matrix.n_rows)
    _raises_same(
        lambda: REF.sptrsv_lower(matrix, b),
        lambda: LVL.sptrsv_lower(matrix, b),
        NotTriangularError,
    )
    _raises_same(
        lambda: REF.sptrsv_upper(matrix, b),
        lambda: LVL.sptrsv_upper(matrix, b),
        NotTriangularError,
    )


def test_zero_pivot_errors_match():
    lower = _matrix("grid").lower_triangle()
    broken = _copy(lower)
    row = 9
    broken.data[broken.indptr[row + 1] - 1] = 0.0  # diagonal is last
    b = np.ones(lower.n_rows)
    _raises_same(
        lambda: REF.sptrsv_lower(broken, b),
        lambda: LVL.sptrsv_lower(broken, b),
        SingularMatrixError,
    )
    upper = broken.transpose()
    _raises_same(
        lambda: REF.sptrsv_upper(upper, b),
        lambda: LVL.sptrsv_upper(upper, b),
        SingularMatrixError,
    )


def test_missing_diagonal_errors_match():
    # Strictly lower triangular: no diagonal stored at all.
    strict = coo_to_csr(COOMatrix(
        [1, 2, 3], [0, 1, 0], [1.0, 2.0, 3.0], (4, 4)
    ))
    b = np.ones(4)
    _raises_same(
        lambda: REF.sptrsv_lower(strict, b),
        lambda: LVL.sptrsv_lower(strict, b),
        SingularMatrixError,
    )
    # ...but a unit-diagonal solve accepts exactly that structure.
    np.testing.assert_array_equal(
        LVL.sptrsv_lower(strict, b, unit_diagonal=True),
        REF.sptrsv_lower(strict, b, unit_diagonal=True),
    )
    # IC(0) reports the same structure as a breakdown, not an error.
    assert REF.ic0_attempt(strict, 0.0) is None
    assert LVL.ic0_attempt(strict, 0.0) is None


# ----------------------------------------------------------------------
# Schedule caching
# ----------------------------------------------------------------------
def test_schedule_cached_per_structure():
    lower = _matrix("grid").lower_triangle()
    first = triangular_schedule(lower)
    assert triangular_schedule(lower) is first
    # A different (is_lower, unit_diagonal) key builds its own entry.
    assert triangular_schedule(lower, unit_diagonal=True) is not first
    # A structurally identical but distinct matrix gets a new schedule.
    assert triangular_schedule(_copy(lower)) is not first


def test_schedule_tracks_in_place_values():
    """The schedule is structure-only: mutating ``data`` in place must
    be picked up without a rebuild, because solvers and the IC(0)
    shift-retry loop update factor values under a fixed pattern."""
    lower = _matrix("grid").lower_triangle()
    b = np.ones(lower.n_rows)
    x1 = LVL.sptrsv_lower(lower, b)
    schedule = triangular_schedule(lower)
    lower.data *= 2.0
    assert triangular_schedule(lower) is schedule  # no rebuild
    x2 = LVL.sptrsv_lower(lower, b)
    np.testing.assert_allclose(2.0 * x2, x1, rtol=1e-12)


# ----------------------------------------------------------------------
# Registry / environment resolution
# ----------------------------------------------------------------------
def test_registry_resolution(monkeypatch):
    assert isinstance(resolve_kernels("reference"), ReferenceKernels)
    assert isinstance(resolve_kernels("level"), LevelScheduledKernels)
    with pytest.raises(ValueError, match="unknown kernel engine"):
        resolve_kernels("nope")
    monkeypatch.delenv(ENV_SOLVER_REFERENCE, raising=False)
    assert default_kernels_name() == "level"
    assert KernelCounter().engine.name == "level"
    monkeypatch.setenv(ENV_SOLVER_REFERENCE, "1")
    assert default_kernels_name() == "reference"
    assert KernelCounter().engine.name == "reference"
    monkeypatch.setenv(ENV_SOLVER_REFERENCE, "0")
    assert default_kernels_name() == "level"
    # An explicit name always wins over the environment.
    monkeypatch.setenv(ENV_SOLVER_REFERENCE, "1")
    assert KernelCounter(kernels="level").engine.name == "level"


def test_counter_forwards_unit_diagonal():
    """`KernelCounter` must forward ``unit_diagonal`` to the engine and
    to the FLOP model (satellites: the flag used to be dropped)."""
    strict = coo_to_csr(COOMatrix(
        [1, 2, 3], [0, 1, 2], [0.5, -1.0, 2.0], (4, 4)
    ))
    counter = KernelCounter(kernels="level")
    b = np.ones(4)
    x = counter.sptrsv_lower(strict, b, unit_diagonal=True)
    np.testing.assert_array_equal(
        x, REF.sptrsv_lower(strict, b, unit_diagonal=True)
    )
    assert counter.flops["sptrsv"] == 2 * strict.nnz
    assert counter.calls["sptrsv"] == 1


def test_sptrsv_flops_unit_diagonal():
    """FLOPs of a unit-diagonal solve count only the strict triangle,
    whether or not the unit diagonal is stored explicitly."""
    lower = _matrix("grid").lower_triangle()
    strict_nnz = lower.nnz - lower.n_rows
    # Non-unit: one FMAC per off-diagonal + one diagonal multiply/row.
    assert sptrsv_flops(lower) == 2 * strict_nnz + lower.n_rows
    # Unit with the (ignored) diagonal stored: same strict count.
    assert sptrsv_flops(lower, unit_diagonal=True) == 2 * strict_nnz
    # Unit without a stored diagonal: nnz IS the strict count; the old
    # ``nnz - n`` formula would undercount by n here.
    no_diag = coo_to_csr(COOMatrix(
        [1, 2, 3], [0, 1, 2], [0.5, -1.0, 2.0], (4, 4)
    ))
    assert sptrsv_flops(no_diag, unit_diagonal=True) == 2 * no_diag.nnz


# ----------------------------------------------------------------------
# End-to-end PCG equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["consph", "thermal2"])
def test_pcg_history_matches_reference(name, monkeypatch):
    matrix, b = get_suite_matrix(name)
    options = SolveOptions(max_iterations=40, tol=1e-9,
                           record_history=True)

    monkeypatch.setenv(ENV_SOLVER_REFERENCE, "1")
    ref = pcg(matrix, b, IncompleteCholesky(matrix, kernels="reference"),
              options)
    monkeypatch.delenv(ENV_SOLVER_REFERENCE)
    lvl = pcg(matrix, b, IncompleteCholesky(matrix, kernels="level"),
              options)

    assert lvl.iterations == ref.iterations
    assert lvl.converged == ref.converged
    assert lvl.flops == ref.flops
    np.testing.assert_allclose(
        np.asarray(lvl.history.residuals),
        np.asarray(ref.history.residuals),
        rtol=1e-6,
    )
    np.testing.assert_allclose(lvl.x, ref.x, rtol=1e-6, atol=1e-12)

"""Tests for the AMG preconditioner, placement I/O, DSATUR coloring,
and queueing stats."""

import numpy as np
import pytest

from repro.core import map_azul, map_block
from repro.core.mapping_io import (
    load_placement,
    placements_equal,
    save_placement,
)
from repro.errors import MappingError, PreconditionerError
from repro.graph import greedy_coloring
from repro.graph.coloring import validate_coloring
from repro.precond import ic0
from repro.precond.amg import AMGPreconditioner, aggregate, strength_graph
from repro.solvers import pcg
from repro.sparse import generators as gen


class TestAMG:
    def test_aggregation_covers_all_vertices(self):
        matrix = gen.grid_laplacian_2d(10, 10)
        agg = aggregate(matrix)
        assert agg.min() >= 0
        assert agg.max() + 1 < matrix.n_rows  # actually coarsens

    def test_strength_graph_excludes_weak(self):
        matrix = gen.grid_laplacian_2d(6, 6)
        strong = strength_graph(matrix, theta=0.25)
        for i, neighbors in enumerate(strong):
            assert i not in neighbors  # no self-coupling

    def test_apply_reduces_residual(self):
        """One V-cycle must contract the error on a Poisson problem."""
        matrix = gen.grid_laplacian_2d(16, 16, shift=0.01)
        precond = AMGPreconditioner(matrix)
        rng = np.random.default_rng(71)
        r = rng.standard_normal(matrix.n_rows)
        z = precond.apply(r)
        # z approximates A^{-1} r: residual of A z vs r must shrink.
        assert (
            np.linalg.norm(matrix.spmv(z) - r) < np.linalg.norm(r)
        )

    def test_accelerates_pcg(self):
        matrix = gen.grid_laplacian_2d(20, 20, shift=0.005)
        b = gen.make_rhs(matrix, seed=72)
        plain = pcg(matrix, b)
        amg = pcg(matrix, b, AMGPreconditioner(matrix))
        assert amg.converged
        assert amg.iterations < plain.iterations

    def test_coarsening_ratio(self):
        matrix = gen.grid_laplacian_2d(12, 12)
        precond = AMGPreconditioner(matrix)
        assert precond.coarsening_ratio > 1.5

    def test_rejects_non_square(self):
        from repro.sparse import COOMatrix, coo_to_csr

        rect = coo_to_csr(COOMatrix([0], [1], [1.0], (2, 3)))
        with pytest.raises(PreconditionerError):
            AMGPreconditioner(rect)

    def test_spmv_only_kernels(self):
        matrix = gen.grid_laplacian_2d(8, 8)
        assert AMGPreconditioner(matrix).kernels == ("spmv",)


class TestMappingIO:
    @pytest.fixture
    def placement(self):
        matrix = gen.random_spd(40, nnz_per_row=4, seed=73)
        lower = ic0(matrix)
        return map_block(matrix, lower, 16)

    def test_roundtrip(self, placement, tmp_path):
        path = tmp_path / "placement.npz"
        save_placement(path, placement)
        loaded = load_placement(path)
        assert placements_equal(placement, loaded)
        assert loaded.mapper == placement.mapper

    def test_version_check(self, placement, tmp_path):
        path = tmp_path / "placement.npz"
        np.savez_compressed(
            path, version=99, n_tiles=4,
            a_tile=np.zeros(1, dtype=int), l_tile=np.zeros(1, dtype=int),
            vec_tile=np.zeros(1, dtype=int), mapper="x",
        )
        with pytest.raises(MappingError):
            load_placement(path)

    def test_corrupted_tiles_rejected_on_load(self, tmp_path):
        path = tmp_path / "placement.npz"
        np.savez_compressed(
            path, version=1, n_tiles=4,
            a_tile=np.array([99]), l_tile=np.zeros(1, dtype=int),
            vec_tile=np.zeros(1, dtype=int), mapper="x",
        )
        with pytest.raises(MappingError):
            load_placement(path)

    def test_placements_equal_detects_difference(self, placement):
        import copy

        modified = copy.deepcopy(placement)
        modified.vec_tile = (modified.vec_tile + 1) % 16
        assert not placements_equal(placement, modified)


class TestDsatur:
    def test_valid_coloring(self, grid_matrix):
        colors = greedy_coloring(grid_matrix, strategy="dsatur")
        assert validate_coloring(grid_matrix, colors)

    def test_grid_two_colors(self):
        matrix = gen.grid_laplacian_2d(6, 6)
        colors = greedy_coloring(matrix, strategy="dsatur")
        assert colors.max() + 1 == 2

    def test_no_more_colors_than_largest_first(self, mesh_matrix):
        dsatur = greedy_coloring(mesh_matrix, strategy="dsatur")
        largest = greedy_coloring(mesh_matrix, strategy="largest_first")
        assert dsatur.max() <= largest.max() + 1


class TestQueueDelay:
    def test_congested_mapping_has_more_queueing(self):
        from repro.comm import TorusGeometry
        from repro.config import AzulConfig
        from repro.core import map_round_robin
        from repro.dataflow import build_spmv_program
        from repro.sim import AZUL_PE, KernelSimulator

        matrix = gen.random_spd(80, nnz_per_row=6, seed=74)
        lower = ic0(matrix)
        torus = TorusGeometry(4, 4)
        config = AzulConfig(mesh_rows=4, mesh_cols=4)
        rr = map_round_robin(matrix, lower, 16)
        program = build_spmv_program(
            matrix, rr.a_tile, rr.vec_tile, torus
        )
        result = KernelSimulator(program, torus, config, AZUL_PE).run(
            x=np.ones(80)
        )
        assert result.link_queue_delay >= 0
        # One-tile machines never queue.
        one = map_round_robin(matrix, lower, 1)
        program1 = build_spmv_program(
            matrix, one.a_tile, one.vec_tile, TorusGeometry(1, 1)
        )
        local = KernelSimulator(
            program1, TorusGeometry(1, 1),
            AzulConfig(mesh_rows=1, mesh_cols=1), AZUL_PE,
        ).run(x=np.ones(80))
        assert local.link_queue_delay == 0

"""Unit tests for the COO/CSR/CSC formats and conversions."""

import numpy as np
import pytest

from repro.errors import MatrixFormatError
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    coo_to_csc,
    coo_to_csr,
    csc_to_csr,
    csr_to_coo,
    csr_to_csc,
    from_scipy,
    to_scipy,
)
from tests.conftest import random_csr


class TestCOO:
    def test_basic_construction(self):
        coo = COOMatrix([0, 1], [1, 0], [2.0, 3.0], (2, 2))
        assert coo.nnz == 2
        assert coo.shape == (2, 2)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(MatrixFormatError):
            COOMatrix([0, 1], [1], [2.0, 3.0], (2, 2))

    def test_out_of_bounds_rejected(self):
        with pytest.raises(MatrixFormatError):
            COOMatrix([0, 5], [1, 0], [2.0, 3.0], (2, 2))
        with pytest.raises(MatrixFormatError):
            COOMatrix([0, 1], [1, 9], [2.0, 3.0], (2, 2))

    def test_to_dense_sums_duplicates(self):
        coo = COOMatrix([0, 0], [0, 0], [1.5, 2.5], (1, 1))
        assert coo.to_dense()[0, 0] == 4.0

    def test_sum_duplicates(self):
        coo = COOMatrix([0, 0, 1], [0, 0, 1], [1.0, 2.0, 5.0], (2, 2))
        summed = coo.sum_duplicates()
        assert summed.nnz == 2
        assert np.allclose(summed.to_dense(), [[3.0, 0.0], [0.0, 5.0]])

    def test_transpose(self):
        coo = COOMatrix([0, 1], [1, 2], [1.0, 2.0], (2, 3))
        t = coo.transpose()
        assert t.shape == (3, 2)
        assert np.allclose(t.to_dense(), coo.to_dense().T)

    def test_prune_zeros(self):
        coo = COOMatrix([0, 1], [0, 1], [0.0, 2.0], (2, 2))
        assert coo.prune_zeros().nnz == 1

    def test_from_dense_roundtrip(self, rng):
        dense = rng.standard_normal((6, 5))
        dense[np.abs(dense) < 0.8] = 0.0
        coo = COOMatrix.from_dense(dense)
        assert np.allclose(coo.to_dense(), dense)

    def test_empty_matrix(self):
        coo = COOMatrix([], [], [], (3, 3))
        assert coo.nnz == 0
        assert np.allclose(coo.to_dense(), np.zeros((3, 3)))


class TestCSR:
    def test_roundtrip_through_coo(self, rng):
        csr = random_csr(rng)
        again = coo_to_csr(csr_to_coo(csr))
        assert again.allclose(csr)

    def test_spmv_matches_dense(self, rng):
        csr = random_csr(rng)
        x = rng.standard_normal(csr.n_cols)
        assert np.allclose(csr.spmv(x), csr.to_dense() @ x)

    def test_matmul_operator(self, rng):
        csr = random_csr(rng)
        x = rng.standard_normal(csr.n_cols)
        assert np.allclose(csr @ x, csr.spmv(x))

    def test_spmv_rejects_bad_length(self, rng):
        csr = random_csr(rng)
        with pytest.raises(MatrixFormatError):
            csr.spmv(np.zeros(csr.n_cols + 1))

    def test_transpose(self, rng):
        csr = random_csr(rng)
        assert np.allclose(csr.transpose().to_dense(), csr.to_dense().T)

    def test_row_access(self, rng):
        csr = random_csr(rng)
        dense = csr.to_dense()
        for i in range(csr.n_rows):
            cols, vals = csr.row(i)
            assert np.all(np.diff(cols) > 0)  # sorted, unique
            row = np.zeros(csr.n_cols)
            row[cols] = vals
            assert np.allclose(row, dense[i])

    def test_diagonal(self, small_spd):
        diag = small_spd.diagonal()
        assert np.allclose(diag, np.diag(small_spd.to_dense()))
        assert np.all(diag > 0)  # SPD generator guarantees positive diagonal

    def test_triangles_partition_matrix(self, small_spd):
        lower = small_spd.lower_triangle()
        upper = small_spd.upper_triangle(include_diagonal=False)
        assert np.allclose(
            lower.to_dense() + upper.to_dense(), small_spd.to_dense()
        )

    def test_lower_triangle_structure(self, small_spd):
        lower = small_spd.lower_triangle()
        dense = lower.to_dense()
        assert np.allclose(dense, np.tril(small_spd.to_dense()))

    def test_scale_rows(self, rng):
        csr = random_csr(rng)
        scale = rng.random(csr.n_rows) + 0.5
        scaled = csr.scale_rows(scale)
        assert np.allclose(scaled.to_dense(), csr.to_dense() * scale[:, None])

    def test_invalid_indptr_rejected(self):
        with pytest.raises(MatrixFormatError):
            CSRMatrix([0, 2], [0], [1.0], (1, 1))
        with pytest.raises(MatrixFormatError):
            CSRMatrix([1, 1], [], [], (1, 1))

    def test_sort_indices(self):
        csr = CSRMatrix([0, 2], [1, 0], [5.0, 7.0], (1, 2))
        sorted_csr = csr.sort_indices()
        assert list(sorted_csr.indices) == [0, 1]
        assert list(sorted_csr.data) == [7.0, 5.0]


class TestCSC:
    def test_roundtrip(self, rng):
        csr = random_csr(rng)
        csc = csr_to_csc(csr)
        assert np.allclose(csc.to_dense(), csr.to_dense())
        assert csc_to_csr(csc).allclose(csr)

    def test_spmv_matches_csr(self, rng):
        csr = random_csr(rng)
        csc = csr_to_csc(csr)
        x = rng.standard_normal(csr.n_cols)
        assert np.allclose(csc.spmv(x), csr.spmv(x))

    def test_col_access(self, rng):
        csr = random_csr(rng)
        csc = csr_to_csc(csr)
        dense = csr.to_dense()
        for j in range(csc.n_cols):
            rows, vals = csc.col(j)
            col = np.zeros(csc.n_rows)
            col[rows] = vals
            assert np.allclose(col, dense[:, j])

    def test_diagonal(self, small_spd):
        csc = csr_to_csc(small_spd)
        assert np.allclose(csc.diagonal(), small_spd.diagonal())


class TestScipyInterop:
    def test_from_scipy(self, rng):
        import scipy.sparse as sps

        mat = sps.random(15, 12, density=0.2, random_state=42, format="csr")
        ours = from_scipy(mat)
        assert np.allclose(ours.to_dense(), mat.toarray())

    def test_to_scipy_roundtrip(self, rng):
        csr = random_csr(rng)
        assert np.allclose(to_scipy(csr).toarray(), csr.to_dense())

    def test_coo_to_csc_duplicates(self):
        coo = COOMatrix([0, 0, 1], [1, 1, 0], [1.0, 1.0, 3.0], (2, 2))
        csc = coo_to_csc(coo)
        assert csc.nnz == 2
        assert np.allclose(csc.to_dense(), [[0.0, 2.0], [3.0, 0.0]])

"""Tests for the :class:`ExperimentSession` facade and its cache wiring.

The acceptance scenario from the redesign: a deliberately corrupted
cache entry must cause *zero* failures — the entry is quarantined,
recomputed, and the incident shows up in ``repro-azul cache stats``.
"""

import numpy as np
import pytest

import repro
from repro import cli
from repro.cache import ArtifactCache, MISS, NPZ
from repro.config import AzulConfig
from repro.experiments.common import (
    PLACEMENT_NAMESPACE,
    PLACEMENT_SCHEMA,
    ExperimentSession,
)

TINY = AzulConfig(mesh_rows=4, mesh_cols=4)


class TestExports:
    def test_session_exported_from_top_level(self):
        assert repro.ExperimentSession is ExperimentSession
        assert "ExperimentSession" in repro.__all__

    def test_cache_types_exported(self):
        assert repro.ArtifactCache is ArtifactCache
        assert "ArtifactCache" in repro.__all__
        assert "CacheStats" in repro.__all__


class TestValidation:
    def test_bad_config_type(self):
        with pytest.raises(TypeError, match="AzulConfig"):
            ExperimentSession(config="8x8")

    def test_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            ExperimentSession(TINY, scale=0)

    def test_bad_preset_with_hint(self):
        with pytest.raises(ValueError, match="spede.*speed"):
            ExperimentSession(TINY, preset="spede")

    def test_bad_matrix_name(self):
        with pytest.raises(ValueError, match="unknown matrix"):
            ExperimentSession(TINY).prepare("tmt_sim")

    def test_bad_mapper_with_hint(self):
        session = ExperimentSession(TINY)
        with pytest.raises(ValueError, match="unknown mapper.*'azul'"):
            session.placement("tmt_sym", "azool")

    def test_bad_pe_model(self):
        session = ExperimentSession(TINY)
        with pytest.raises(ValueError, match="unknown pe"):
            session.simulate("tmt_sym", pe="gpu")

    def test_errors_raised_before_any_work(self):
        """Validation is eager: no cache traffic for a bad name."""
        session = ExperimentSession(TINY)
        before = session.cache_stats().lookups
        with pytest.raises(ValueError):
            session.simulate("tmt_sym", mapper="nope")
        assert session.cache_stats().lookups == before


class TestCaching:
    def test_sessions_share_the_default_cache(self):
        first = ExperimentSession(TINY)
        second = ExperimentSession(TINY)
        assert first.cache is second.cache

    def test_placement_cross_session_disk_reuse(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        producer = ExperimentSession(TINY)
        produced = producer.placement("tmt_sym", "block")
        # A fresh cache instance simulates a different process: the
        # memory tier is empty, so the entry must come off disk.
        consumer = ExperimentSession(
            TINY, cache=ArtifactCache.from_env(persist_stats=False),
        )
        consumed = consumer.placement("tmt_sym", "block")
        assert (produced.a_tile == consumed.a_tile).all()
        assert (produced.l_tile == consumed.l_tile).all()
        assert (produced.vec_tile == consumed.vec_tile).all()
        assert consumer.cache_stats().hits_disk == 1
        assert consumer.cache_stats().misses == 0

    def test_use_cache_false_bypasses_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        session = ExperimentSession(TINY, use_cache=False)
        session.placement("tmt_sym", "block")
        assert session.cache_stats().writes == 0

    def test_different_config_different_simulation(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        small = ExperimentSession(TINY).simulate(
            "tmt_sym", mapper="block")
        wide = ExperimentSession(
            AzulConfig(mesh_rows=4, mesh_cols=8)
        ).simulate("tmt_sym", mapper="block")
        assert small is not wide
        assert small.total_cycles != wide.total_cycles


class TestCorruptionEndToEnd:
    def test_corrupt_placement_recovers_and_is_reported(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        session = ExperimentSession(TINY)
        good = session.placement("tmt_sym", "block")

        # Smash every placement payload on disk.
        placement_dir = session.cache.root / PLACEMENT_NAMESPACE
        smashed = 0
        for payload in placement_dir.glob("*.npz"):
            payload.write_bytes(b"corrupted beyond recognition")
            smashed += 1
        assert smashed >= 1

        # A fresh cache (cold memory tier) must hit the corruption,
        # quarantine it, and transparently recompute — zero failures.
        recovering = ExperimentSession(TINY, cache=ArtifactCache.from_env())
        recomputed = recovering.placement("tmt_sym", "block")
        assert (recomputed.a_tile == good.a_tile).all()
        stats = recovering.cache_stats()
        assert stats.corruptions == smashed
        assert stats.quarantined == smashed
        assert list(recovering.cache.quarantine_dir.iterdir())

        # ... and the incident is visible through the CLI.
        recovering.cache.flush_stats()
        assert cli.main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "corruptions: 1" in out
        assert "quarantined 1" in out

        # The healed entry reads back cleanly from disk afterwards.
        healed = ArtifactCache.from_env(persist_stats=False)
        key = healed.key(
            "placement", "tmt_sym", 1, "block", TINY.num_tiles,
            "speed", PLACEMENT_SCHEMA,
        )
        assert healed.get(PLACEMENT_NAMESPACE, key, NPZ) is not MISS

    def test_cache_verify_cli_flags_corruption(self, tmp_path,
                                               monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        session = ExperimentSession(TINY)
        session.placement("tmt_sym", "block")
        assert cli.main(["cache", "verify"]) == 0
        (payload,) = (session.cache.root / PLACEMENT_NAMESPACE).glob(
            "*.npz")
        payload.write_bytes(b"junk")
        assert cli.main(["cache", "verify"]) == 1
        assert cli.main(["cache", "verify", "--fix"]) == 0
        out = capsys.readouterr().out
        assert "corrupt" in out

    def test_cache_clear_cli(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        session = ExperimentSession(TINY)
        session.placement("tmt_sym", "block")
        assert session.cache.disk_bytes() > 0
        assert cli.main(["cache", "clear"]) == 0
        assert "cleared" in capsys.readouterr().out
        assert ArtifactCache.from_env().disk_bytes() == 0


class TestRunnerIntegration:
    def test_runner_cache_stats_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.experiments import runner

        assert runner.main(["--list", "--cache-stats"]) == 0
        capsys.readouterr()
        assert runner.main(["tab4", "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "artifact cache" in out

"""Failure-injection tests: corrupted inputs must fail loudly.

A production library's error paths matter as much as its happy paths:
these tests deliberately break placements, programs, and inputs and
assert the library raises its typed exceptions instead of silently
producing wrong timing or wrong numbers.
"""

import numpy as np
import pytest

from repro.comm import TorusGeometry
from repro.config import AzulConfig
from repro.core import Placement, map_block
from repro.dataflow import build_spmv_program, build_sptrsv_program
from repro.errors import (
    CapacityError,
    MappingError,
    SimulationError,
)
from repro.precond import ic0
from repro.sim import AZUL_PE, AzulMachine, KernelSimulator
from repro.sparse import generators as gen


@pytest.fixture(scope="module")
def operands():
    matrix = gen.random_spd(40, nnz_per_row=4, seed=21)
    lower = ic0(matrix)
    b = gen.make_rhs(matrix, seed=22)
    return matrix, lower, b


CONFIG = AzulConfig(mesh_rows=4, mesh_cols=4)
TORUS = TorusGeometry(4, 4)


class TestCorruptPlacements:
    def test_out_of_range_tile_rejected_at_construction(self, operands):
        matrix, lower, _ = operands
        with pytest.raises(MappingError):
            Placement(
                n_tiles=16,
                a_tile=np.full(matrix.nnz, 16),  # one past the end
                l_tile=np.zeros(lower.nnz, dtype=int),
                vec_tile=np.zeros(matrix.n_rows, dtype=int),
            )

    def test_negative_tile_rejected(self, operands):
        matrix, lower, _ = operands
        bad = np.zeros(matrix.nnz, dtype=int)
        bad[0] = -1
        with pytest.raises(MappingError):
            Placement(
                n_tiles=16,
                a_tile=bad,
                l_tile=np.zeros(lower.nnz, dtype=int),
                vec_tile=np.zeros(matrix.n_rows, dtype=int),
            )

    def test_capacity_overflow_detected(self, operands):
        matrix, lower, _ = operands
        # Cram everything onto tile 0 of a tiny-SRAM machine.
        hoarding = Placement(
            n_tiles=16,
            a_tile=np.zeros(matrix.nnz, dtype=int),
            l_tile=np.zeros(lower.nnz, dtype=int),
            vec_tile=np.zeros(matrix.n_rows, dtype=int),
        )
        tiny = CONFIG.with_(data_sram_bytes=1024)
        with pytest.raises(CapacityError):
            hoarding.validate_capacity(tiny)


class TestCorruptPrograms:
    def test_tampered_counters_deadlock_is_detected(self, operands):
        """Inflating a completion counter starves a row forever; the
        engine must diagnose the deadlock, not hang or return zeros."""
        matrix, lower, b = operands
        placement = map_block(matrix, lower, 16)
        program = build_sptrsv_program(
            lower, placement.l_tile, placement.vec_tile, TORUS
        )
        p, i = np.argwhere(program.local_counts > 0)[0]
        program.local_counts[p, i] += 1  # expects one phantom FMAC
        with pytest.raises(SimulationError, match="deadlock"):
            KernelSimulator(program, TORUS, CONFIG, AZUL_PE).run(b=b)

    def test_missing_input_vector(self, operands):
        matrix, lower, _ = operands
        placement = map_block(matrix, lower, 16)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, TORUS
        )
        with pytest.raises(SimulationError):
            KernelSimulator(program, TORUS, CONFIG, AZUL_PE).run()

    def test_machine_tile_count_mismatch(self, operands):
        matrix, lower, b = operands
        placement = map_block(matrix, lower, 4)
        with pytest.raises(SimulationError):
            AzulMachine(CONFIG).simulate_pcg(matrix, lower, placement, b)


class TestCorruptNumerics:
    def test_nan_inputs_propagate_not_crash(self, operands):
        """NaNs flow through the dataflow like hardware would: the
        simulation completes and the NaN appears in the output."""
        matrix, lower, _ = operands
        placement = map_block(matrix, lower, 16)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, TORUS
        )
        x = np.ones(matrix.n_rows)
        x[3] = np.nan
        result = KernelSimulator(program, TORUS, CONFIG, AZUL_PE).run(x=x)
        reference = matrix.spmv(x)
        assert np.array_equal(
            np.isnan(result.output), np.isnan(reference)
        )

    def test_verification_catches_wrong_results(self, operands):
        """If the machine's answer were wrong, check=True must raise."""
        from repro.sim.machine import verify_iteration

        matrix, lower, b = operands
        placement = map_block(matrix, lower, 16)
        machine = AzulMachine(CONFIG)
        result = machine.simulate_pcg(matrix, lower, placement, b,
                                      check=False)
        # Corrupt the recorded SpMV output, then re-verify.
        result.kernel_results[0].output[0] += 1.0
        with pytest.raises(SimulationError, match="SpMV"):
            verify_iteration(result, matrix, lower, b)


class TestCorruptModelInputs:
    def test_power_report_rejects_zero_time(self, operands):
        from repro.models import power_report

        matrix, lower, b = operands
        placement = map_block(matrix, lower, 16)
        result = AzulMachine(CONFIG).simulate_pcg(
            matrix, lower, placement, b, check=False
        )
        result.total_cycles = 0
        with pytest.raises(ValueError):
            power_report(result, CONFIG)

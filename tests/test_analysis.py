"""Tests for sparsity-pattern analysis (spatial correlation)."""

import numpy as np
import pytest

from repro.graph import color_and_permute
from repro.sparse import generators as gen
from repro.sparse.analysis import (
    correlation_decay,
    pattern_profile,
    row_jaccard,
    spatial_correlation,
)


class TestRowJaccard:
    def test_identical_rows(self):
        matrix = gen.tridiagonal_spd(6)
        assert row_jaccard(matrix, 2, 2) == 1.0

    def test_disjoint_rows(self):
        matrix = gen.tridiagonal_spd(10)
        # Rows 0 and 9 of a tridiagonal matrix share no columns.
        assert row_jaccard(matrix, 0, 9) == 0.0

    def test_adjacent_tridiagonal_rows_overlap(self):
        matrix = gen.tridiagonal_spd(10)
        # Rows i and i+1 share columns {i, i+1}: |I|=2, |U|=4.
        assert row_jaccard(matrix, 4, 5) == pytest.approx(0.5)


class TestSpatialCorrelation:
    def test_grid_is_correlated(self):
        matrix = gen.grid_laplacian_2d(12, 12)
        assert spatial_correlation(matrix) > 0.2

    def test_random_is_uncorrelated(self):
        matrix = gen.random_spd(300, nnz_per_row=5, seed=3)
        assert spatial_correlation(matrix) < 0.05

    def test_banded_more_correlated_than_random(self):
        banded = gen.banded_spd(100, 8, density=0.9, seed=1)
        random = gen.random_spd(100, nnz_per_row=8, seed=1)
        assert spatial_correlation(banded) > spatial_correlation(random)

    def test_permutation_destroys_correlation(self):
        """Coloring+permutation scrambles row adjacency — part of why
        position-based mappings fail after preprocessing (Sec. VI-C)."""
        matrix = gen.grid_laplacian_2d(16, 16)
        permuted, _, _ = color_and_permute(matrix)
        assert spatial_correlation(permuted) < spatial_correlation(matrix)

    def test_decay_over_distance(self):
        matrix = gen.banded_spd(120, 6, density=0.9, seed=2)
        decay = correlation_decay(matrix, max_lag=6)
        # Correlation at lag 1 exceeds correlation at the band edge.
        assert decay[0] > decay[-1]

    def test_tiny_matrix(self):
        matrix = gen.tridiagonal_spd(2)
        assert spatial_correlation(matrix, lag=5) == 0.0


class TestPatternProfile:
    def test_profile_fields(self):
        matrix = gen.grid_laplacian_2d(8, 8)
        profile = pattern_profile(matrix)
        assert profile.n == 64
        assert profile.nnz == matrix.nnz
        assert profile.nnz_per_row == pytest.approx(matrix.nnz / 64)
        assert 0 <= profile.diagonal_fraction <= 1

    def test_correlation_classification(self):
        grid = pattern_profile(gen.grid_laplacian_2d(12, 12))
        random = pattern_profile(gen.random_spd(200, nnz_per_row=5, seed=4))
        assert grid.is_spatially_correlated()
        assert not random.is_spatially_correlated()

"""Tests for the end-to-end application harness (Sec. II-C)."""

import numpy as np
import pytest

from repro.apps import (
    AzulExecutionEstimate,
    HeatTransferModel,
    PhysicalSystemSimulator,
    StructuralModel,
)
from repro.config import AzulConfig
from repro.errors import ReproError
from repro.solvers import SolveOptions


class TestHeatTransfer:
    def test_matrix_is_spd_and_static(self):
        model = HeatTransferModel(nx=10, ny=10)
        matrix = model.initial_matrix()
        dense = matrix.to_dense()
        assert np.allclose(dense, dense.T)
        assert np.linalg.eigvalsh(dense).min() > 0
        assert not hasattr(model, "update_values")

    def test_heat_dissipates_monotonically(self):
        model = HeatTransferModel(nx=12, ny=12, dt=0.2)
        simulator = PhysicalSystemSimulator(model)
        trace = simulator.run(n_steps=10)
        assert trace.n_steps == 10
        # Maximum principle: peak temperature can only decay.
        assert trace.x.max() < model.initial_state().max()
        assert trace.x.min() >= -1e-8

    def test_heat_spreads(self):
        model = HeatTransferModel(nx=12, ny=12, dt=0.2)
        simulator = PhysicalSystemSimulator(model)
        initially_cold = model.initial_state() == 0.0
        trace = simulator.run(n_steps=5)
        # Cold cells adjacent to the hotspot must have warmed up.
        assert trace.x[initially_cold].max() > 0.01

    def test_warm_start_reduces_iterations(self):
        """Later timesteps start near the solution and converge faster."""
        model = HeatTransferModel(nx=12, ny=12, dt=0.05)
        simulator = PhysicalSystemSimulator(model)
        trace = simulator.run(n_steps=8)
        first = trace.records[0].iterations
        last = trace.records[-1].iterations
        assert last <= first

    def test_total_heat_helper(self):
        model = HeatTransferModel(nx=8, ny=8)
        assert model.total_heat(model.initial_state()) > 0


class TestStructural:
    def test_values_change_pattern_does_not(self):
        model = StructuralModel(n_nodes=40, dofs=2, softening=0.1)
        matrix = model.initial_matrix()
        x = np.ones(matrix.n_rows)
        updated = model.update_values(matrix, x)
        assert np.array_equal(updated.indptr, matrix.indptr)
        assert np.array_equal(updated.indices, matrix.indices)
        assert not np.allclose(updated.data, matrix.data)

    def test_zero_softening_is_static(self):
        model = StructuralModel(n_nodes=30, softening=0.0)
        matrix = model.initial_matrix()
        assert model.update_values(matrix, np.ones(matrix.n_rows)) is matrix

    def test_simulation_runs_and_refreshes(self):
        model = StructuralModel(
            n_nodes=40, dofs=1, softening=0.5, refresh_threshold=0.01
        )
        simulator = PhysicalSystemSimulator(
            model, options=SolveOptions(tol=1e-8)
        )
        trace = simulator.run(n_steps=6)
        assert trace.total_iterations > 0
        # Strong softening + tight threshold must trigger a refresh.
        assert trace.refresh_count >= 1

    def test_gentle_drift_avoids_refresh(self):
        model = StructuralModel(
            n_nodes=40, dofs=1, softening=0.001, refresh_threshold=0.5
        )
        simulator = PhysicalSystemSimulator(model)
        trace = simulator.run(n_steps=4)
        assert trace.refresh_count == 0

    def test_pattern_change_rejected(self):
        """The harness enforces Sec. II-C's static-pattern requirement."""

        class BadModel(StructuralModel):
            def update_values(self, matrix, x):
                from repro.sparse.generators import random_spd

                return random_spd(matrix.n_rows, seed=99)

        simulator = PhysicalSystemSimulator(BadModel(n_nodes=30, dofs=1))
        with pytest.raises(ReproError):
            simulator.run(n_steps=2)


class TestAzulIntegration:
    def test_execution_estimate(self):
        model = HeatTransferModel(nx=10, ny=10)
        simulator = PhysicalSystemSimulator(model)
        config = AzulConfig(mesh_rows=4, mesh_cols=4)
        estimate = simulator.azul_estimate(config=config)
        assert estimate.cycles_per_iteration > 0
        trace = simulator.run(n_steps=3)
        assert estimate.solve_seconds(trace.total_iterations) > 0

    def test_amortization_math(self):
        estimate = AzulExecutionEstimate(
            cycles_per_iteration=2000, frequency_hz=2e9,
            mapping_seconds=60.0,
        )
        # 0.01 * 60s / (100 iters * 1us) = 6000 steps to reach 1%.
        steps = estimate.amortization_steps(iterations_per_step=100)
        assert steps == pytest.approx(6000.0)

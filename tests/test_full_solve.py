"""End-to-end validation: full PCG solves on the simulated machine.

The paper's strongest functional check (Sec. VI-A): the simulator's
complete PCG results must match a reference implementation.
"""

import numpy as np
import pytest

from repro.config import AzulConfig
from repro.core import map_azul, map_block, map_round_robin
from repro.errors import ConvergenceError
from repro.hypergraph import PartitionerOptions
from repro.precond import IncompleteCholesky
from repro.sim import AzulMachine
from repro.sim.full_solve import simulate_full_pcg
from repro.solvers import SolveOptions, pcg
from repro.sparse import generators as gen


@pytest.fixture(scope="module")
def problem():
    matrix = gen.random_geometric_fem(60, avg_degree=6, dofs_per_node=1,
                                      seed=17)
    b, x_true = gen.make_rhs_with_solution(matrix, seed=18)
    preconditioner = IncompleteCholesky(matrix)
    return matrix, preconditioner, b, x_true


CONFIG = AzulConfig(mesh_rows=4, mesh_cols=4)


class TestFullSolve:
    def test_matches_reference_pcg(self, problem):
        """Machine-executed PCG == reference PCG, iteration for
        iteration."""
        matrix, preconditioner, b, x_true = problem
        lower = preconditioner.lower_factor()
        placement = map_block(matrix, lower, CONFIG.num_tiles)
        machine = AzulMachine(CONFIG)
        simulated = simulate_full_pcg(
            machine, matrix, lower, placement, b, tol=1e-10
        )
        reference = pcg(matrix, b, preconditioner,
                        options=SolveOptions(tol=1e-10))
        assert simulated.converged
        assert simulated.iterations == reference.iterations
        assert np.allclose(simulated.x, reference.x, atol=1e-8)
        assert np.allclose(simulated.x, x_true, atol=1e-5)

    def test_mapping_does_not_change_results(self, problem):
        """Any placement computes the same answer; only cycles differ."""
        matrix, preconditioner, b, _ = problem
        lower = preconditioner.lower_factor()
        machine = AzulMachine(CONFIG)
        outcomes = {}
        for name, mapper in (
            ("rr", map_round_robin),
            ("block", map_block),
        ):
            placement = mapper(matrix, lower, CONFIG.num_tiles)
            outcomes[name] = simulate_full_pcg(
                machine, matrix, lower, placement, b, tol=1e-10
            )
        assert np.allclose(outcomes["rr"].x, outcomes["block"].x,
                           atol=1e-10)
        assert outcomes["rr"].iterations == outcomes["block"].iterations

    def test_azul_mapping_solves_fastest(self, problem):
        matrix, preconditioner, b, _ = problem
        lower = preconditioner.lower_factor()
        machine = AzulMachine(CONFIG)
        rr = simulate_full_pcg(
            machine, matrix, lower,
            map_round_robin(matrix, lower, CONFIG.num_tiles), b,
        )
        azul = simulate_full_pcg(
            machine, matrix, lower,
            map_azul(matrix, lower, CONFIG.num_tiles,
                     options=PartitionerOptions.speed(seed=3)),
            b,
        )
        assert azul.total_cycles < rr.total_cycles

    def test_cycles_accounting(self, problem):
        matrix, preconditioner, b, _ = problem
        lower = preconditioner.lower_factor()
        placement = map_block(matrix, lower, CONFIG.num_tiles)
        result = simulate_full_pcg(
            AzulMachine(CONFIG), matrix, lower, placement, b
        )
        assert 0 < result.kernel_cycles <= result.total_cycles
        assert result.seconds(CONFIG.frequency_hz) > 0
        assert len(result.history) == result.iterations + 1

    def test_raise_on_divergence(self, problem):
        matrix, preconditioner, b, _ = problem
        lower = preconditioner.lower_factor()
        placement = map_block(matrix, lower, CONFIG.num_tiles)
        with pytest.raises(ConvergenceError):
            simulate_full_pcg(
                AzulMachine(CONFIG), matrix, lower, placement, b,
                max_iterations=1, raise_on_divergence=True,
            )

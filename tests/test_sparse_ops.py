"""Unit tests for the reference SpMV/SpTRSV kernels and FLOP accounting."""

import numpy as np
import pytest

from repro.errors import NotTriangularError, SingularMatrixError
from repro.sparse import (
    CSRMatrix,
    spmv,
    spmv_flops,
    sptrsv_flops,
    sptrsv_lower,
    sptrsv_upper,
)
from repro.sparse.ops import axpy_flops, dot_flops
from tests.conftest import random_csr


class TestSpMV:
    def test_identity(self):
        n = 5
        eye = CSRMatrix(np.arange(n + 1), np.arange(n), np.ones(n), (n, n))
        x = np.arange(n, dtype=float)
        assert np.allclose(spmv(eye, x), x)

    def test_matches_dense(self, rng):
        csr = random_csr(rng, 20, 20, 0.3)
        x = rng.standard_normal(20)
        assert np.allclose(spmv(csr, x), csr.to_dense() @ x)

    def test_flops(self, small_spd):
        assert spmv_flops(small_spd) == 2 * small_spd.nnz


class TestSpTRSVLower:
    def test_paper_example_figure4(self):
        """The 6x6 lower-triangular example of Fig. 4/5."""
        dense = np.array([
            [2.0, 0, 0, 0, 0, 0],
            [0, 3.0, 0, 0, 0, 0],
            [1.0, 0, 4.0, 0, 0, 0],
            [2.0, 0, 0, 5.0, 0, 0],
            [1.0, 0, 0, 1.0, 2.0, 0],
            [0, 1.0, 2.0, 0, 1.0, 3.0],
        ])
        from repro.sparse import COOMatrix, coo_to_csr

        lower = coo_to_csr(COOMatrix.from_dense(dense))
        x_true = np.array([1.0, -2.0, 0.5, 3.0, -1.0, 2.0])
        b = dense @ x_true
        assert np.allclose(sptrsv_lower(lower, b), x_true)

    def test_matches_numpy_solve(self, small_spd, rng):
        lower = small_spd.lower_triangle()
        b = rng.standard_normal(lower.n_rows)
        x = sptrsv_lower(lower, b)
        assert np.allclose(lower.to_dense() @ x, b)

    def test_unit_diagonal(self, rng):
        n = 10
        dense = np.tril(rng.standard_normal((n, n)), k=-1)
        from repro.sparse import COOMatrix, coo_to_csr

        lower = coo_to_csr(COOMatrix.from_dense(dense))
        b = rng.standard_normal(n)
        x = sptrsv_lower(lower, b, unit_diagonal=True)
        assert np.allclose((dense + np.eye(n)) @ x, b)

    def test_rejects_upper_entries(self, small_spd, rng):
        b = rng.standard_normal(small_spd.n_rows)
        with pytest.raises(NotTriangularError):
            sptrsv_lower(small_spd, b)  # full matrix, not triangular

    def test_rejects_missing_diagonal(self):
        from repro.sparse import COOMatrix, coo_to_csr

        # Row 1 has no diagonal entry.
        lower = coo_to_csr(COOMatrix([0, 1], [0, 0], [1.0, 1.0], (2, 2)))
        with pytest.raises(SingularMatrixError):
            sptrsv_lower(lower, np.ones(2))

    def test_rejects_zero_pivot(self):
        from repro.sparse import COOMatrix, coo_to_csr

        lower = coo_to_csr(
            COOMatrix([0, 1, 1], [0, 0, 1], [1.0, 1.0, 0.0], (2, 2))
        )
        with pytest.raises(SingularMatrixError):
            sptrsv_lower(lower, np.ones(2))


class TestSpTRSVUpper:
    def test_matches_numpy_solve(self, small_spd, rng):
        upper = small_spd.upper_triangle()
        b = rng.standard_normal(upper.n_rows)
        x = sptrsv_upper(upper, b)
        assert np.allclose(upper.to_dense() @ x, b)

    def test_transpose_consistency(self, small_spd, rng):
        """Solving L^T x = b must equal solving with the upper triangle."""
        lower = small_spd.lower_triangle()
        upper = lower.transpose()
        b = rng.standard_normal(lower.n_rows)
        x = sptrsv_upper(upper, b)
        assert np.allclose(np.triu(lower.to_dense().T) @ x, b)

    def test_rejects_lower_entries(self, small_spd, rng):
        b = rng.standard_normal(small_spd.n_rows)
        with pytest.raises(NotTriangularError):
            sptrsv_upper(small_spd, b)


class TestFlopAccounting:
    def test_sptrsv_flops(self, small_spd):
        lower = small_spd.lower_triangle()
        n = lower.n_rows
        expected = 2 * (lower.nnz - n) + n
        assert sptrsv_flops(lower) == expected

    def test_vector_op_flops(self):
        assert dot_flops(100) == 200
        assert axpy_flops(100) == 200

"""Tests for the analytic baseline models and area/power estimation."""

import numpy as np
import pytest

from repro.config import AzulConfig, paper_config
from repro.graph import color_and_permute
from repro.models import (
    AlreschaModel,
    EnergyModel,
    GPUModel,
    area_report,
    power_report,
)
from repro.precond import ic0
from repro.sparse import generators as gen


@pytest.fixture(scope="module")
def operands():
    matrix = gen.random_geometric_fem(60, avg_degree=6, dofs_per_node=1, seed=6)
    return matrix, ic0(matrix)


class TestGPUModel:
    def test_utilization_is_tiny(self, operands):
        """Fig. 1: GPUs achieve well under 1% of peak on PCG."""
        matrix, lower = operands
        model = GPUModel()
        assert model.utilization(matrix, lower) < 0.01
        assert model.gflops(matrix, lower) > 0

    def test_sptrsv_dominates_runtime(self, operands):
        """Fig. 3: most GPU time goes to SpTRSV."""
        matrix, lower = operands
        fractions = GPUModel().pcg_iteration_time(matrix, lower).fractions()
        assert fractions["sptrsv"] > fractions["spmv"]
        assert abs(sum(fractions.values()) - 1.0) < 1e-12

    def test_coloring_speeds_up_gpu(self):
        """Fig. 7: permuted matrices run faster (fewer SpTRSV levels)."""
        matrix = gen.banded_spd(300, 10, density=0.8, seed=3)
        permuted, _, _ = color_and_permute(matrix)
        model = GPUModel()
        original_time = model.pcg_iteration_time(
            matrix, matrix.lower_triangle()
        ).total
        permuted_time = model.pcg_iteration_time(
            permuted, permuted.lower_triangle()
        ).total
        assert original_time / permuted_time > 1.5

    def test_bigger_matrix_takes_longer(self, operands):
        matrix, lower = operands
        big = gen.grid_laplacian_2d(40, 40)
        big_lower = ic0(big)
        model = GPUModel()
        assert (
            model.pcg_iteration_time(big, big_lower).total
            > model.pcg_iteration_time(matrix, lower).spmv
        )


class TestAlreschaModel:
    def test_bandwidth_bound_throughput(self, operands):
        """ALRESCHA sustains at most ~48 GFLOP/s (Sec. III)."""
        matrix, lower = operands
        model = AlreschaModel()
        gflops = model.gflops(matrix, lower)
        assert 0 < gflops < 60

    def test_faster_than_gpu_on_low_parallelism(self):
        """Fig. 20 left side: ALRESCHA beats the GPU on matrices whose
        SpTRSV levels throttle the GPU."""
        matrix = gen.banded_spd(300, 12, density=0.8, seed=5)
        lower = ic0(matrix)
        assert AlreschaModel().gflops(matrix, lower) > \
            GPUModel().gflops(matrix, lower)

    def test_time_scales_with_nnz(self, operands):
        matrix, lower = operands
        model = AlreschaModel()
        time = model.pcg_iteration_time(matrix, lower)
        expected = (matrix.nnz + 2 * lower.nnz) * 12 / 288e9
        assert np.isclose(time, expected)


class TestArea:
    def test_paper_configuration_matches_table5(self):
        """Table V: the 4096-tile machine is ~155 mm^2, SRAM ~74%."""
        report = area_report(paper_config())
        assert np.isclose(report.pes, 17.6, atol=0.5)
        assert np.isclose(report.routers, 6.6, atol=0.2)
        assert np.isclose(report.srams, 115.2, atol=2.0)
        assert 150 < report.total < 160
        assert report.srams / report.total > 0.70

    def test_area_scales_with_tiles(self):
        small = area_report(AzulConfig(mesh_rows=8, mesh_cols=8))
        large = area_report(AzulConfig(mesh_rows=16, mesh_cols=16))
        assert large.pes == pytest.approx(4 * small.pes)
        assert large.io == small.io  # I/O does not scale

    def test_rows_include_total(self):
        rows = area_report().rows()
        assert rows[-1][0] == "Total"


class TestPower:
    def _iteration_result(self, operands):
        from repro.core import map_block
        from repro.sim import AzulMachine

        matrix, lower = operands
        config = AzulConfig(mesh_rows=4, mesh_cols=4)
        placement = map_block(matrix, lower, 16)
        b = gen.make_rhs(matrix, seed=1)
        return AzulMachine(config).simulate_pcg(
            matrix, lower, placement, b
        ), config

    def test_power_breakdown(self, operands):
        result, config = self._iteration_result(operands)
        report = power_report(result, config)
        assert report.total > 0
        assert report.sram > 0
        assert report.noc > 0
        assert report.leakage == pytest.approx(16 * 6e-3)
        assert np.isclose(
            report.total,
            report.sram + report.compute + report.noc + report.leakage,
        )

    def test_sram_dominates_dynamic_power(self, operands):
        """Sec. VI-E: SRAMs dominate energy."""
        result, config = self._iteration_result(operands)
        report = power_report(result, config)
        assert report.sram > report.compute
        assert report.sram > report.noc

    def test_energy_model_components(self):
        energy = EnergyModel()
        assert energy.sram_energy(100, 10, 5, 20) > 0
        assert energy.compute_energy(100, 10, 5) > energy.compute_energy(0, 10, 5)
        assert energy.noc_energy(0) == 0
        assert energy.leakage_power(4096) == pytest.approx(24.576)


class TestPerfMetrics:
    def test_gmean(self):
        from repro.perf import gmean

        assert gmean([2, 8]) == pytest.approx(4.0)
        assert gmean([]) == 0.0
        with pytest.raises(ValueError):
            gmean([1.0, -1.0])

    def test_speedup(self):
        from repro.perf import speedup

        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_normalize(self):
        from repro.perf import normalize

        assert normalize([1.0, 2.0, 4.0]) == [0.25, 0.5, 1.0]
        assert normalize([]) == []

    def test_experiment_result_render(self):
        from repro.perf import ExperimentResult

        result = ExperimentResult(
            experiment="figX",
            title="demo",
            columns=["matrix", "gflops"],
        )
        result.add_row(matrix="thermal2", gflops=123.456)
        text = result.render()
        assert "FIGX" in text
        assert "thermal2" in text
        assert "123" in text

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "tmt_sym"])
        assert args.solver == "pcg"
        assert args.precond == "ic0"
        assert args.color is True

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "tmt_sym"])
        assert args.pe == "azul"
        assert args.rows == 8

    def test_run_jobs_flag(self):
        args = build_parser().parse_args(["run", "fig27", "--jobs", "4"])
        assert args.ids == ["fig27"]
        assert args.jobs == 4

    def test_experiment_jobs_flag(self):
        args = build_parser().parse_args(
            ["experiment", "fig27", "--jobs", "2"]
        )
        assert args.jobs == 2


class TestCommands:
    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "thermal2" in out
        assert "crankseg_1" in out

    def test_solve_suite_matrix(self, capsys):
        code = main([
            "solve", "tmt_sym", "--precond", "jacobi", "--tol", "1e-8",
        ])
        assert code == 0
        assert "converged" in capsys.readouterr().out

    def test_solve_mtx_file(self, tmp_path, capsys):
        from repro.sparse import write_matrix_market
        from repro.sparse.generators import random_spd

        path = tmp_path / "system.mtx"
        write_matrix_market(path, random_spd(40, seed=1), symmetric=True)
        assert main(["solve", str(path)]) == 0

    def test_solve_unknown_matrix(self):
        with pytest.raises(SystemExit):
            main(["solve", "not_a_matrix"])

    def test_solve_nonconvergent_exit_code(self, capsys):
        code = main([
            "solve", "tmt_sym", "--precond", "none", "--max-iters", "1",
        ])
        assert code == 1

    def test_map_block(self, capsys):
        code = main([
            "map", "tmt_sym", "--mapper", "block",
            "--rows", "4", "--cols", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "link activations" in out

    def test_simulate_block(self, capsys):
        code = main([
            "simulate", "tmt_sym", "--mapper", "block",
            "--rows", "4", "--cols", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "GFLOP/s" in out
        assert "end-to-end" in out

    def test_experiment_dispatch(self, capsys):
        assert main(["experiment", "tab2"]) == 0
        assert "SpTRSV" in capsys.readouterr().out

    def test_run_list(self, capsys):
        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig20" in out
        assert "abl_trees" in out

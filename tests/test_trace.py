"""Tests for simulator trace analysis."""

import dataclasses

import numpy as np
import pytest

from repro.comm import TorusGeometry
from repro.config import AzulConfig
from repro.core import map_round_robin
from repro.dataflow import build_spmv_program
from repro.precond import ic0
from repro.sim import AZUL_PE, KernelSimulator
from repro.sim.trace import (
    chrome_trace_events,
    export_trace_csv,
    idle_tail_fraction,
    link_heatmap,
    op_mix_by_tile,
    tile_activity,
    utilization_timeline,
)
from repro.sparse import generators as gen


@pytest.fixture(scope="module")
def traced_result():
    matrix = gen.random_spd(50, nnz_per_row=5, seed=41)
    lower = ic0(matrix)
    placement = map_round_robin(matrix, lower, 16)
    torus = TorusGeometry(4, 4)
    config = AzulConfig(mesh_rows=4, mesh_cols=4)
    program = build_spmv_program(
        matrix, placement.a_tile, placement.vec_tile, torus
    )
    result = KernelSimulator(
        program, torus, config, AZUL_PE, record_issue_trace=True
    ).run(x=np.ones(50))
    return result, torus


class TestTraceAnalysis:
    def test_timeline_bounded(self, traced_result):
        result, _ = traced_result
        timeline = utilization_timeline(result, 16, n_buckets=10)
        assert timeline.shape == (10,)
        assert np.all(timeline >= 0)
        assert np.all(timeline <= 1.0 + 1e-9)
        assert timeline.sum() > 0

    def test_tile_activity_sums_to_ops(self, traced_result):
        result, _ = traced_result
        activity = tile_activity(result, 16)
        assert activity.sum() == sum(result.op_counts.values())

    def test_op_mix_matches_totals(self, traced_result):
        result, _ = traced_result
        mix = op_mix_by_tile(result, 16)
        assert mix[:, 0].sum() == result.op_counts["fmac"]
        assert mix[:, 1].sum() == result.op_counts["add"]
        assert mix[:, 3].sum() == result.op_counts["send"]

    def test_link_heatmap_sums_to_activations(self, traced_result):
        result, torus = traced_result
        heat = link_heatmap(result, torus)
        assert heat.sum() == result.link_activations

    def test_idle_tail_fraction_range(self, traced_result):
        result, _ = traced_result
        tail = idle_tail_fraction(result, 16)
        assert 0.0 <= tail <= 1.0

    def test_csv_export(self, traced_result, tmp_path):
        result, _ = traced_result
        path = tmp_path / "trace.csv"
        export_trace_csv(result, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "cycle,tile,op"
        assert len(lines) == 1 + sum(result.op_counts.values())
        assert any("fmac" in line for line in lines[1:])

    def test_requires_trace(self):
        matrix = gen.random_spd(20, nnz_per_row=4, seed=5)
        lower = ic0(matrix)
        placement = map_round_robin(matrix, lower, 4)
        torus = TorusGeometry(2, 2)
        config = AzulConfig(mesh_rows=2, mesh_cols=2)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, torus
        )
        result = KernelSimulator(program, torus, config, AZUL_PE).run(
            x=np.ones(20)
        )
        with pytest.raises(ValueError):
            utilization_timeline(result, 4)


class TestDerivedNTiles:
    """Helpers derive ``n_tiles`` from the result since schema v4."""

    def test_helpers_work_without_n_tiles_arg(self, traced_result):
        result, _ = traced_result
        assert result.n_tiles == 16
        timeline = utilization_timeline(result, n_buckets=10)
        assert (timeline == utilization_timeline(result, 16,
                                                 n_buckets=10)).all()
        assert tile_activity(result).sum() == sum(
            result.op_counts.values()
        )
        assert op_mix_by_tile(result).shape == (16, 4)
        assert 0.0 <= idle_tail_fraction(result) <= 1.0

    def test_pre_v4_result_needs_explicit_n_tiles(self, traced_result):
        result, _ = traced_result
        legacy = dataclasses.replace(result, n_tiles=None)
        with pytest.raises(ValueError, match="n_tiles"):
            tile_activity(legacy)
        assert tile_activity(legacy, 16).sum() == sum(
            legacy.op_counts.values()
        )


class TestChromeTraceEvents:
    def test_events_schema(self, traced_result):
        result, _ = traced_result
        events = chrome_trace_events(result, pid=7)
        summary, ops = events[0], events[1:]
        assert summary["ph"] == "X"
        assert summary["pid"] == 7
        assert summary["args"]["kernel"] == result.name
        assert summary["args"]["cycles"] == result.cycles
        assert ops
        for event in ops:
            assert event["ph"] == "X"
            assert event["cat"] == "issue"
            assert event["pid"] == 7
            assert 0 <= event["tid"] < 16
            assert 0 <= event["ts"] <= result.cycles

    def test_event_cap_downsamples(self, traced_result):
        result, _ = traced_result
        capped = chrome_trace_events(result, pid=1, cap=10)
        assert len(capped) - 1 <= 10
        assert capped[0]["args"]["issue_events_dropped"] > 0

    def test_requires_trace(self, traced_result):
        result, _ = traced_result
        untraced = dataclasses.replace(result, issue_trace=None)
        with pytest.raises(ValueError):
            chrome_trace_events(untraced, pid=1)

"""Tests for :mod:`repro.obs` — the observability leaf library.

Covers the registry semantics, the disabled no-op fast paths, span
nesting, exporter file formats (Chrome-trace / metrics JSON), and the
end-to-end pipeline integration: a traced tiny-machine simulation must
produce a Perfetto-loadable trace with pipeline spans and bridged
simulator issue events.
"""

import json

import pytest

import repro.obs as obs
from repro.config import AzulConfig
from repro.obs.registry import HISTOGRAM_SAMPLE_CAP, MetricsRegistry
from repro.obs.spans import NOOP_SPAN, PIPELINE_PID, Tracer


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        registry.counter_inc("cache.hits")
        registry.counter_inc("cache.hits", 2.0)
        assert registry.counter_value("cache.hits") == 3.0

    def test_missing_counter_is_zero(self):
        assert MetricsRegistry().counter_value("never.touched") == 0.0

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.gauge_set("pool.workers", 4)
        registry.gauge_set("pool.workers", 8)
        assert registry.gauge_value("pool.workers") == 8.0

    def test_histogram_statistics(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("phase.seconds", value)
        stats = registry.histogram("phase.seconds").as_dict()
        assert stats["count"] == 3
        assert stats["sum"] == 6.0
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["mean"] == 2.0

    def test_histogram_sample_cap(self):
        registry = MetricsRegistry()
        for i in range(HISTOGRAM_SAMPLE_CAP + 100):
            registry.observe("hot", float(i))
        histogram = registry.histogram("hot")
        assert len(histogram.samples) == HISTOGRAM_SAMPLE_CAP
        # Aggregates still see every observation.
        assert histogram.count == HISTOGRAM_SAMPLE_CAP + 100

    def test_snapshot_shape_and_reset(self):
        registry = MetricsRegistry()
        registry.counter_inc("a")
        registry.gauge_set("b", 1.0)
        registry.observe("c", 0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 1.0}
        assert snapshot["gauges"] == {"b": 1.0}
        assert snapshot["histograms"]["c"]["count"] == 1
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


# ----------------------------------------------------------------------
# Disabled fast paths
# ----------------------------------------------------------------------
class TestDisabledNoOps:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert not obs.metrics_enabled()
        assert not obs.tracing_enabled()

    def test_disabled_calls_record_nothing(self):
        obs.counter("x")
        obs.gauge("y", 1.0)
        obs.observe("z", 2.0)
        with obs.span("quiet"):
            pass
        with obs.timer("quiet.timer"):
            pass
        assert obs.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert obs.tracer().trace_events() == []

    def test_disabled_span_is_shared_noop(self):
        first = obs.span("a", detail=1)
        second = obs.timer("b")
        assert first is NOOP_SPAN
        assert second is NOOP_SPAN
        first.set(anything="goes")  # must not raise

    def test_disabled_allocate_pid_is_zero(self):
        assert obs.allocate_pid("foreign") == 0
        obs.add_trace_events([{"name": "e", "ph": "X"}])
        assert obs.tracer().trace_events() == []

    def test_enable_disable_roundtrip(self):
        obs.enable()
        assert obs.enabled() and obs.tracing_enabled()
        obs.disable()
        assert not obs.enabled()

    def test_metrics_only_mode(self):
        obs.enable(metrics=True, tracing=False)
        obs.counter("m")
        with obs.timer("phase"):
            pass
        snapshot = obs.snapshot()
        assert snapshot["counters"]["m"] == 1.0
        assert snapshot["histograms"]["phase.seconds"]["count"] == 1
        assert obs.tracer().trace_events() == []  # no spans recorded


# ----------------------------------------------------------------------
# Spans and the tracer
# ----------------------------------------------------------------------
class TestSpans:
    def test_span_records_event(self):
        obs.enable()
        with obs.span("outer", kind="test"):
            pass
        events = obs.tracer().trace_events()
        # First event names the pipeline process, then the span.
        assert events[0]["ph"] == "M"
        assert events[0]["pid"] == PIPELINE_PID
        span_events = [e for e in events if e["ph"] == "X"]
        assert span_events[0]["name"] == "outer"
        assert span_events[0]["args"]["kind"] == "test"
        assert span_events[0]["dur"] >= 0

    def test_span_nesting_contained(self):
        obs.enable()
        with obs.span("parent"):
            with obs.span("child"):
                pass
        by_name = {
            e["name"]: e
            for e in obs.tracer().trace_events() if e["ph"] == "X"
        }
        parent, child = by_name["parent"], by_name["child"]
        assert child["ts"] >= parent["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]

    def test_set_adds_args_late(self):
        obs.enable()
        with obs.span("phase") as handle:
            handle.set(result=42)
        (event,) = [
            e for e in obs.tracer().trace_events() if e["ph"] == "X"
        ]
        assert event["args"]["result"] == 42

    def test_timer_is_span_plus_histogram(self):
        obs.enable()
        with obs.timer("both"):
            pass
        assert obs.snapshot()["histograms"]["both.seconds"]["count"] == 1
        assert any(
            e["ph"] == "X" and e["name"] == "both"
            for e in obs.tracer().trace_events()
        )

    def test_allocate_pid_registers_foreign_process(self):
        obs.enable()
        pid = obs.allocate_pid("kernel:spmv (cycles)")
        assert pid > PIPELINE_PID
        obs.add_trace_events([
            {"name": "op", "ph": "X", "ts": 0.0, "dur": 1.0,
             "pid": pid, "tid": 0, "cat": "issue"},
        ])
        events = obs.tracer().trace_events()
        metas = [e for e in events if e["ph"] == "M"]
        assert any(
            m["pid"] == pid
            and m["args"]["name"] == "kernel:spmv (cycles)"
            for m in metas
        )
        assert any(e.get("cat") == "issue" for e in events)

    def test_fresh_tracer_is_independent(self):
        tracer = Tracer()
        with tracer.span("only.here"):
            pass
        assert any(
            e["ph"] == "X" and e["name"] == "only.here"
            for e in tracer.trace_events()
        )
        assert obs.tracer().trace_events() == []


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExport:
    def test_metrics_round_trip(self, tmp_path):
        obs.enable(metrics=True, tracing=False)
        obs.counter("cache.hits_disk", 3)
        obs.observe("pipeline.simulate.seconds", 0.25)
        path = tmp_path / "metrics.json"
        obs.write_metrics(path, extra={"overrides": {"REPRO_JOBS": None}})
        payload = json.loads(path.read_text())
        assert payload["schema"] == obs.METRICS_SCHEMA
        assert payload["counters"]["cache.hits_disk"] == 3.0
        histogram = payload["histograms"]["pipeline.simulate.seconds"]
        assert histogram["count"] == 1
        assert "overrides" in payload

    def test_chrome_trace_schema(self, tmp_path):
        obs.enable()
        with obs.span("pipeline.place", matrix="tmt_sym"):
            pass
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(path, metadata={"experiments": ["fig20"]})
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["experiments"] == ["fig20"]
        for event in payload["traceEvents"]:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["pid"], int)
            if event["ph"] == "X":
                assert {"name", "ts", "dur", "tid"} <= set(event)

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        obs.enable()
        obs.write_chrome_trace(tmp_path / "t.json")
        leftovers = [
            p for p in tmp_path.iterdir() if p.name != "t.json"
        ]
        assert leftovers == []


# ----------------------------------------------------------------------
# End-to-end: traced pipeline on a tiny machine
# ----------------------------------------------------------------------
TINY = AzulConfig(mesh_rows=2, mesh_cols=2)


class TestPipelineIntegration:
    @pytest.fixture()
    def session(self):
        from repro.experiments.common import (
            ExperimentSession,
            clear_prepared_matrices,
        )

        # The prepared-matrix memo is process-wide; drop it so the
        # pipeline.prepare span fires regardless of test order.
        clear_prepared_matrices()
        return ExperimentSession(TINY, use_cache=False)

    def test_traced_simulation_end_to_end(self, session, tmp_path):
        obs.enable()
        session.simulate("tmt_sym", trace=True)
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        session.export_trace(trace_path)
        session.export_metrics(metrics_path)

        trace = json.loads(trace_path.read_text())
        names = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        for span_name in ("pipeline.prepare", "pipeline.place",
                          "pipeline.simulate", "place.partition",
                          "partition.bisect"):
            assert span_name in names, f"missing span {span_name}"
        # Simulator issue events live on foreign (cycle-time) processes.
        issue = [
            e for e in trace["traceEvents"] if e.get("cat") == "issue"
        ]
        assert issue
        assert all(e["pid"] > PIPELINE_PID for e in issue)

        metrics = json.loads(metrics_path.read_text())
        timers = metrics["histograms"]
        assert timers["pipeline.simulate.seconds"]["count"] == 1
        assert "partition.coarsen.seconds" in timers
        assert "overrides" in metrics and "cache" in metrics

    def test_trace_bridged_once_per_key(self, session):
        def issue_events():
            return [
                e for e in obs.tracer().trace_events()
                if e.get("cat") == "issue"
            ]

        obs.enable()
        session.simulate("tmt_sym", trace=True)
        first = len(issue_events())
        assert first > 0
        # Re-simulating the same point must not duplicate the
        # issue-event timelines (the bridge dedups by cache key).
        session.simulate("tmt_sym", trace=True)
        assert len(issue_events()) == first

    def test_untraced_results_have_no_issue_events(self, session):
        obs.enable(metrics=True, tracing=False)
        session.simulate("tmt_sym")
        assert obs.tracer().trace_events() == []

    def test_sweep_counters_emitted(self, session):
        obs.enable(metrics=True, tracing=False)
        session.simulate_many(["tmt_sym", "tmt_sym"], jobs=1)
        counters = obs.snapshot()["counters"]
        assert counters["sweep.points"] == 2.0
        assert counters["sweep.deduplicated"] == 1.0

    def test_cache_counters_unified(self, tmp_path):
        from repro.cache import ArtifactCache
        from repro.experiments.common import ExperimentSession

        obs.enable(metrics=True, tracing=False)
        cache = ArtifactCache(root=tmp_path)
        caching = ExperimentSession(TINY, cache=cache, use_cache=True)
        caching.simulate("tmt_sym", mapper="block")
        caching.simulate("tmt_sym", mapper="block")
        counters = obs.snapshot()["counters"]
        hits = sum(
            value for name, value in counters.items()
            if name.startswith("cache.hits")
        )
        misses = sum(
            value for name, value in counters.items()
            if name.startswith("cache.misses")
        )
        assert misses >= 1
        # Second simulate short-circuits in some cache tier.
        assert hits >= 1

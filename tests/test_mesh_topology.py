"""Tests for the mesh NoC geometry and topology selection."""

import numpy as np
import pytest

from repro.comm import (
    MeshGeometry,
    TorusGeometry,
    build_multicast_tree,
    make_geometry,
    route_path,
)
from repro.config import AzulConfig


class TestMeshGeometry:
    def test_corner_has_two_neighbors(self):
        mesh = MeshGeometry(4, 4)
        assert len(mesh.neighbors(0)) == 2
        # Interior tiles have four.
        assert len(mesh.neighbors(mesh.tile_id(1, 1))) == 4

    def test_no_wraparound(self):
        mesh = MeshGeometry(4, 4)
        top_left = 0
        bottom_right = mesh.tile_id(3, 3)
        # Manhattan distance, not the torus's 2 hops.
        assert mesh.hop_distance(top_left, bottom_right) == 6

    def test_out_of_range_coords_rejected(self):
        mesh = MeshGeometry(3, 3)
        with pytest.raises(ValueError):
            mesh.tile_id(3, 0)

    def test_routing_stays_in_grid(self, rng):
        mesh = MeshGeometry(5, 5)
        for _ in range(20):
            src, dst = (int(v) for v in rng.integers(0, 25, 2))
            path = route_path(mesh, src, dst)
            assert path[0] == src and path[-1] == dst
            assert len(path) - 1 == mesh.hop_distance(src, dst)
            for a, b in zip(path, path[1:]):
                assert b in mesh.neighbors(a)

    def test_multicast_tree_on_mesh(self, rng):
        mesh = MeshGeometry(4, 4)
        dests = sorted(set(int(v) for v in rng.integers(1, 16, 6)))
        tree = build_multicast_tree(mesh, 0, dests)
        reached = {0}
        stack = [0]
        while stack:
            node = stack.pop()
            for child in tree.children.get(node, ()):
                reached.add(child)
                stack.append(child)
        assert set(dests) <= reached

    def test_mesh_reduction_deeper_than_torus(self):
        torus = TorusGeometry(8, 8)
        mesh = MeshGeometry(8, 8)
        assert mesh.reduction_depth() >= torus.reduction_depth()

    def test_mesh_bisection_half_of_torus(self):
        torus = TorusGeometry(8, 8)
        mesh = MeshGeometry(8, 8)
        assert mesh.bisection_links() * 2 == torus.bisection_links()


class TestTopologySelection:
    def test_factory(self):
        assert isinstance(
            make_geometry(AzulConfig(topology="torus")), TorusGeometry
        )
        assert isinstance(
            make_geometry(AzulConfig(topology="mesh")), MeshGeometry
        )

    def test_invalid_topology_rejected(self):
        with pytest.raises(ValueError):
            AzulConfig(topology="hypercube")

    def test_mesh_machine_is_functionally_correct(self):
        """The simulator computes identical numerics on either NoC."""
        from repro.core import map_block
        from repro.precond import ic0
        from repro.sim import AzulMachine
        from repro.sparse import generators as gen

        matrix = gen.random_spd(40, nnz_per_row=4, seed=9)
        lower = ic0(matrix)
        b = gen.make_rhs(matrix, seed=10)
        placement = map_block(matrix, lower, 16)
        for topology in ("torus", "mesh"):
            config = AzulConfig(mesh_rows=4, mesh_cols=4,
                                topology=topology)
            # check=True asserts numeric equality with the reference.
            AzulMachine(config).simulate_pcg(
                matrix, lower, placement, b, check=True
            )

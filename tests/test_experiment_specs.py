"""Tests for the declarative experiment specs and the staged executor.

Covers the registry contract (every experiment module registers
exactly one spec whose id matches the runner table and DESIGN.md's
per-experiment index), the global point dedup across experiments,
checkpoint-based ``--resume``, ``--keep-going`` failure isolation,
spec-shim parity (``module.run()`` equals the executor's output), and
the sibling-group extension of the AST layer checker.
"""

import re
import sys
from pathlib import Path

import pytest

from repro.config import AzulConfig
from repro.experiments import EXPERIMENTS, load_spec, load_specs
from repro.experiments import fig21, fig22
from repro.experiments.executor import (
    ExperimentFailure,
    execute,
    plan_experiments,
)
from repro.experiments.spec import (
    ExperimentPlan,
    ExperimentSpec,
    register,
    registered_specs,
    unregister,
)
from repro.perf import ExperimentResult

REPO = Path(__file__).resolve().parent.parent
SMALL = ["offshore", "tmt_sym"]
TINY_CONFIG = AzulConfig(mesh_rows=4, mesh_cols=4)


def _design_ids():
    """Experiment ids from DESIGN.md's per-experiment index tables."""
    text = (REPO / "DESIGN.md").read_text(encoding="utf-8")
    start = text.index("## 4. Per-experiment index")
    end = text.index("## 5", start)
    ids = set()
    for line in text[start:end].splitlines():
        match = re.match(r"\|\s*(\w+)\s*\|", line)
        if match and match.group(1) not in ("ID",):
            ids.add(match.group(1))
    return ids


def _synthetic(experiment_id, counter, fail=False):
    """Register a cheap analytic spec that counts reduce() calls."""

    @register(experiment_id, title=f"synthetic {experiment_id}",
              tags=("extension", "study", "analytic"))
    def spec(jobs=None):
        def reduce(sims):
            if fail:
                raise RuntimeError(f"boom in {experiment_id}")
            counter[experiment_id] = counter.get(experiment_id, 0) + 1
            result = ExperimentResult(
                experiment=experiment_id, title="synthetic",
                columns=["k", "v"],
            )
            result.add_row(k="calls", v=counter[experiment_id])
            return result

        return ExperimentPlan(session=None, reduce=reduce)

    return spec


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_every_module_registers_matching_spec(self):
        specs = load_specs()
        assert [spec.id for spec in specs] == list(EXPERIMENTS)
        for spec in specs:
            assert spec.module == EXPERIMENTS[spec.id]
            assert spec.title
            assert "jobs" in spec.params

    def test_registry_snapshot_complete(self):
        load_specs()
        assert set(EXPERIMENTS) <= set(registered_specs())

    def test_ids_match_design_doc(self):
        assert _design_ids() == set(EXPERIMENTS)

    def test_tag_vocabulary(self):
        for spec in load_specs():
            tags = set(spec.tags)
            assert len(tags & {"paper", "extension"}) == 1, spec.id
            assert tags & {"figure", "table", "study", "ablation"}, spec.id
            assert len(tags & {"sim", "analytic"}) == 1, spec.id
            if "sweep" in tags:
                assert "sim" in tags, spec.id

    def test_sweep_tag_matches_default_points(self):
        # "sweep" means: the builder contributes points by default.
        for spec in load_specs():
            plan = spec.plan()
            assert bool(plan.points) == ("sweep" in spec.tags), spec.id

    def test_builder_must_declare_jobs(self):
        with pytest.raises(TypeError, match="jobs"):
            @register("bogus_nojobs", title="x")
            def spec():  # pragma: no cover - registration must fail
                pass
        assert "bogus_nojobs" not in registered_specs()

    def test_duplicate_id_from_other_module_rejected(self):
        def foreign(jobs=None):  # pragma: no cover - never built
            pass

        foreign.__module__ = "somewhere.else"
        register("dup_id_test", title="first")(foreign)
        try:
            with pytest.raises(ValueError, match="already registered"):
                @register("dup_id_test", title="again")
                def other(jobs=None):  # pragma: no cover
                    pass
        finally:
            unregister("dup_id_test")

    def test_unknown_override_rejected(self):
        spec = load_spec("fig21")
        with pytest.raises(TypeError, match="does not accept"):
            spec.plan(nonsense=1)

    def test_describe_lists_id_title_tags(self):
        spec = load_spec("fig21")
        line = spec.describe()
        assert "fig21" in line and spec.title in line
        for tag in spec.tags:
            assert tag in line


# ----------------------------------------------------------------------
# Planning / global dedup
# ----------------------------------------------------------------------
class TestPlanning:
    def test_global_dedup_across_experiments(self, fresh_cache):
        specs = [load_spec("fig21"), load_spec("fig22")]
        _, sweep = plan_experiments(
            specs,
            overrides={"matrices": SMALL, "config": TINY_CONFIG},
        )
        assert sweep.total_points == 4
        assert sweep.sum_unique == 4
        assert sweep.unique_points == 2
        assert sweep.deduplicated == 2
        assert sweep.predicted_cache_hits == 0
        assert sweep.to_compute == 2
        rendered = sweep.render()
        assert "4 points, 2 unique globally" in rendered

    def test_predicted_cache_hits_after_execute(self, fresh_cache):
        overrides = {"matrices": SMALL, "config": TINY_CONFIG}
        execute([load_spec("fig21")], overrides=overrides)
        _, sweep = plan_experiments(
            [load_spec("fig21"), load_spec("fig22")], overrides=overrides,
        )
        # fig21's two points are on disk; fig22 shares them.
        assert sweep.predicted_cache_hits == 2
        assert sweep.to_compute == 0

    def test_plan_never_simulates(self, fresh_cache):
        _, sweep = plan_experiments(
            [load_spec("fig21")],
            overrides={"matrices": SMALL, "config": TINY_CONFIG},
        )
        assert sweep.unique_points == 2
        simulations = fresh_cache / "simulations"
        assert not simulations.exists() or not any(simulations.iterdir())

    def test_jobs_is_stripped_from_overrides(self, fresh_cache):
        entries, _ = plan_experiments(
            [load_spec("fig21")],
            overrides={"jobs": 7, "matrices": SMALL,
                       "config": TINY_CONFIG},
        )
        assert "jobs" not in entries[0].overrides

    def test_build_failure_aborts_without_keep_going(self, fresh_cache):
        counter = {}

        @register("syn_badbuild", title="bad build",
                  tags=("extension", "study", "analytic"))
        def bad(jobs=None):
            raise RuntimeError("builder exploded")

        try:
            with pytest.raises(ExperimentFailure, match="syn_badbuild"):
                plan_experiments([bad])
            _, sweep = plan_experiments([bad], keep_going=True)
            assert sweep.build_failures == 1
            assert "WARNING" in sweep.render()
        finally:
            unregister("syn_badbuild")


# ----------------------------------------------------------------------
# Execution: resume + keep-going
# ----------------------------------------------------------------------
class TestExecution:
    def test_resume_skips_checkpointed(self, fresh_cache):
        counter = {}
        specs = [_synthetic("syn_res_a", counter),
                 _synthetic("syn_res_b", counter)]
        try:
            first = execute(specs)
            assert first.exit_code == 0
            assert counter == {"syn_res_a": 1, "syn_res_b": 1}

            second = execute(specs, resume=True)
            assert second.exit_code == 0
            assert [o.status for o in second.outcomes] == ["resumed"] * 2
            # reduce() never re-ran; results replay from checkpoints.
            assert counter == {"syn_res_a": 1, "syn_res_b": 1}
            assert second.outcomes[0].result.rows == first.outcomes[0].result.rows
            assert second.sweep.resumed == 2
        finally:
            unregister("syn_res_a")
            unregister("syn_res_b")

    def test_resume_respects_override_fingerprint(self, fresh_cache):
        overrides = {"matrices": SMALL, "config": TINY_CONFIG}
        execute([load_spec("fig21")], overrides=overrides)
        report = execute(
            [load_spec("fig21")], resume=True,
            overrides={"matrices": ["offshore"], "config": TINY_CONFIG},
        )
        # Different matrix set -> different checkpoint -> not resumed.
        assert report.outcomes[0].status == "ok"
        assert len(report.outcomes[0].result.rows) == 1

    def test_keep_going_isolates_failures(self, fresh_cache):
        counter = {}
        specs = [_synthetic("syn_kg_bad", counter, fail=True),
                 _synthetic("syn_kg_good", counter)]
        try:
            report = execute(specs, keep_going=True)
            assert report.exit_code == 1
            statuses = {o.experiment_id: o.status for o in report.outcomes}
            assert statuses == {"syn_kg_bad": "failed",
                                "syn_kg_good": "ok"}
            assert counter == {"syn_kg_good": 1}
            (failure,) = report.failures()
            assert "boom in syn_kg_bad" in failure.error
        finally:
            unregister("syn_kg_bad")
            unregister("syn_kg_good")

    def test_failure_aborts_without_keep_going(self, fresh_cache):
        counter = {}
        specs = [_synthetic("syn_abort", counter, fail=True)]
        try:
            with pytest.raises(ExperimentFailure, match="syn_abort"):
                execute(specs)
        finally:
            unregister("syn_abort")

    def test_shared_sweep_serves_both_experiments(self, fresh_cache):
        report = execute(
            [load_spec("fig21"), load_spec("fig22")],
            overrides={"matrices": SMALL, "config": TINY_CONFIG},
        )
        assert report.exit_code == 0
        assert report.sweep.unique_points == 2
        assert report.sweep_stats.get("points") == 2
        for outcome in report.outcomes:
            assert outcome.status == "ok"
            assert len(outcome.result.rows) == 2


# ----------------------------------------------------------------------
# Spec-shim parity
# ----------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("module,experiment_id",
                             [(fig21, "fig21"), (fig22, "fig22")])
    def test_run_shim_matches_executor(self, module, experiment_id):
        direct = module.run(matrices=SMALL, config=TINY_CONFIG)
        report = execute(
            [load_spec(experiment_id)],
            overrides={"matrices": SMALL, "config": TINY_CONFIG},
        )
        via_executor = report.outcomes[0].result
        assert direct.columns == via_executor.columns
        assert direct.rows == via_executor.rows


# ----------------------------------------------------------------------
# Layer checker: sibling groups
# ----------------------------------------------------------------------
class TestSiblingLayers:
    @pytest.fixture
    def check_layers(self):
        sys.path.insert(0, str(REPO / "tools"))
        try:
            import check_layers
            yield check_layers
        finally:
            sys.path.remove(str(REPO / "tools"))

    def test_experiment_modules_share_one_rank(self, check_layers):
        fig21_layer = check_layers._layer("repro.experiments.fig21")
        fig22_layer = check_layers._layer("repro.experiments.fig22")
        runner_layer = check_layers._layer("repro.experiments.runner")
        spec_layer = check_layers._layer("repro.experiments.spec")
        assert fig21_layer[1] == fig22_layer[1]
        assert spec_layer[1] < fig21_layer[1] < runner_layer[1]

    def test_sibling_import_flagged(self, check_layers, tmp_path):
        pkg = tmp_path / "repro" / "experiments"
        pkg.mkdir(parents=True)
        for name in ("__init__", "spec", "common", "executor"):
            (pkg / f"{name}.py").write_text("")
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "fig21.py").write_text(
            "from repro.experiments.fig22 import spec\n")
        (pkg / "fig22.py").write_text("")
        violations = check_layers.check(tmp_path)
        assert len(violations) == 1
        assert "sibling" in violations[0]

    def test_downward_import_allowed(self, check_layers, tmp_path):
        pkg = tmp_path / "repro" / "experiments"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "spec.py").write_text("")
        (pkg / "fig21.py").write_text(
            "from repro.experiments.spec import register\n")
        (pkg / "runner.py").write_text(
            "from repro.experiments.fig21 import spec\n")
        assert check_layers.check(tmp_path) == []

    def test_upward_import_flagged(self, check_layers, tmp_path):
        pkg = tmp_path / "repro" / "experiments"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "executor.py").write_text(
            "def f():\n    from repro.experiments.runner import load_spec\n")
        (pkg / "runner.py").write_text("")
        violations = check_layers.check(tmp_path)
        assert len(violations) == 1
        assert "higher" in violations[0]

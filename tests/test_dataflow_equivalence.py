"""Equivalence contract of the dataflow lowering strategies.

The array-backed ``VectorizedLowering`` must be an *exact* drop-in for
the per-element ``ReferenceLowering``: bit-identical compiled programs
on real suite matrices across geometries and multicast modes,
identical end-to-end simulated cycles, and a clean escape hatch
(``AZUL_DATAFLOW_REFERENCE``) through the strategy registry.  Also
covers the content-addressed program cache built on that guarantee:
sweep points differing only in simulator knobs reuse one compilation.
"""

import os
from contextlib import contextmanager

import pytest

from repro import obs
from repro.cache import ArtifactCache
from repro.comm import MeshGeometry, TorusGeometry
from repro.config import ENV_DATAFLOW_REFERENCE, AzulConfig, overrides
from repro.core import map_block
from repro.dataflow import (
    LOWERINGS,
    ReferenceLowering,
    VectorizedLowering,
    build_pcg_program,
    resolve_lowering,
)
from repro.dataflow.lower import default_lowering_name
from repro.precond import ic0
from repro.sparse.suite import get_suite_matrix

CONFIG = AzulConfig(mesh_rows=4, mesh_cols=4)
N_TILES = 16


@contextmanager
def _lowering_env(reference: bool):
    """Temporarily force (or clear) the reference-lowering escape hatch."""
    old = os.environ.get(ENV_DATAFLOW_REFERENCE)
    try:
        if reference:
            os.environ[ENV_DATAFLOW_REFERENCE] = "1"
        else:
            os.environ.pop(ENV_DATAFLOW_REFERENCE, None)
        yield
    finally:
        if old is None:
            os.environ.pop(ENV_DATAFLOW_REFERENCE, None)
        else:
            os.environ[ENV_DATAFLOW_REFERENCE] = old


@pytest.fixture(scope="module")
def mapped(request):
    """Suite matrix + IC(0) factor + 16-tile block placement (memoized)."""
    built = {}

    def get(name):
        if name not in built:
            matrix, b = get_suite_matrix(name, scale=1)
            lower = ic0(matrix)
            built[name] = (matrix, lower, map_block(matrix, lower, N_TILES), b)
        return built[name]

    return get


def _build_pair(matrix, lower, placement, geometry, multicast):
    with _lowering_env(reference=False):
        vectorized = build_pcg_program(
            matrix, lower, placement, geometry, CONFIG, multicast=multicast,
        )
    with _lowering_env(reference=True):
        reference = build_pcg_program(
            matrix, lower, placement, geometry, CONFIG, multicast=multicast,
        )
    return vectorized, reference


class TestBitParity:
    """Vectorized and reference lowering emit byte-identical programs."""

    @pytest.mark.parametrize("name", ["tmt_sym", "offshore", "cant"])
    @pytest.mark.parametrize("geometry", [
        TorusGeometry(4, 4), MeshGeometry(4, 4),
    ], ids=["torus", "mesh"])
    @pytest.mark.parametrize("multicast", ["tree", "unicast"])
    def test_programs_bit_identical(self, mapped, name, geometry, multicast):
        matrix, lower, placement, _ = mapped(name)
        vectorized, reference = _build_pair(
            matrix, lower, placement, geometry, multicast,
        )
        for kernel in ("spmv", "sptrsv_lower", "sptrsv_upper"):
            kv = getattr(vectorized, kernel)
            kr = getattr(reference, kernel)
            assert kv.same_program(kr), (name, kernel, multicast)
            assert kv.total_fmacs == kr.total_fmacs

    def test_identical_end_to_end_cycles(self, mapped):
        from repro.sim.machine import AzulMachine, verify_iteration

        matrix, lower, placement, b = mapped("tmt_sym")
        machine = AzulMachine(CONFIG)
        vectorized, reference = _build_pair(
            matrix, lower, placement, machine.torus, "tree",
        )
        result_v = machine.simulate_iteration(vectorized, p=b, r=b)
        result_r = machine.simulate_iteration(reference, p=b, r=b)
        assert result_v.total_cycles == result_r.total_cycles
        assert result_v.vector_cycles == result_r.vector_cycles
        for kv, kr in zip(result_v.kernel_results, result_r.kernel_results):
            assert kv.cycles == kr.cycles
            assert kv.op_counts == kr.op_counts
        verify_iteration(result_v, matrix, lower, b)


class TestLoweringRegistry:
    def test_registry_names(self):
        assert LOWERINGS == {
            "reference": ReferenceLowering,
            "vectorized": VectorizedLowering,
        }

    def test_default_is_vectorized(self):
        with _lowering_env(reference=False):
            assert default_lowering_name() == "vectorized"
            assert resolve_lowering() is VectorizedLowering

    def test_env_escape_hatch_selects_reference(self):
        with _lowering_env(reference=True):
            assert default_lowering_name() == "reference"
            assert resolve_lowering() is ReferenceLowering
            # An explicit name always beats the environment.
            assert resolve_lowering("vectorized") is VectorizedLowering

    def test_unknown_lowering_rejected(self):
        with pytest.raises(ValueError, match="unknown lowering strategy"):
            resolve_lowering("nope")

    def test_overrides_report_effective_lowering(self):
        with _lowering_env(reference=False):
            entry = overrides()[ENV_DATAFLOW_REFERENCE]
            assert entry == {"raw": None, "effective": "vectorized"}
        with _lowering_env(reference=True):
            entry = overrides()[ENV_DATAFLOW_REFERENCE]
            assert entry == {"raw": "1", "effective": "reference"}


class TestProgramCache:
    """Compiled programs are content-addressed across sweep points."""

    @pytest.fixture(autouse=True)
    def _metrics(self):
        obs.reset()
        obs.enable(metrics=True, tracing=False)
        yield
        obs.disable()
        obs.reset()

    @pytest.fixture()
    def session(self, tmp_path):
        from repro.experiments.common import ExperimentSession

        cache = ArtifactCache(tmp_path / "cache")
        return ExperimentSession(CONFIG, cache=cache, use_cache=True)

    @staticmethod
    def _compile_counters():
        counters = obs.snapshot()["counters"]
        return (
            counters.get("compile.requests", 0.0),
            counters.get("compile.builds", 0.0),
            counters.get("compile.cache_hits", 0.0),
        )

    def test_sim_knob_variations_compile_once(self, session):
        for pe in ("azul", "ideal", "dalorex"):
            session.simulate("tmt_sym", mapper="block", pe=pe)
        requests, builds, hits = self._compile_counters()
        assert (requests, builds, hits) == (3.0, 1.0, 2.0)

    def test_compiled_program_roundtrip(self, session):
        first = session.compiled_program("tmt_sym", mapper="block")
        second = session.compiled_program("tmt_sym", mapper="block")
        requests, builds, hits = self._compile_counters()
        assert (requests, builds, hits) == (2.0, 1.0, 1.0)
        for kernel in ("spmv", "sptrsv_lower", "sptrsv_upper"):
            assert getattr(second, kernel).same_program(
                getattr(first, kernel)
            )

    def test_multicast_mode_partitions_cache(self, session):
        session.compiled_program("tmt_sym", mapper="block", multicast="tree")
        session.compiled_program(
            "tmt_sym", mapper="block", multicast="unicast",
        )
        requests, builds, hits = self._compile_counters()
        assert (requests, builds, hits) == (2.0, 2.0, 0.0)

    def test_lowering_name_partitions_cache(self, session):
        from repro.experiments.common import program_cache_key

        matrix, lower, placement, _ = (
            session.prepare("tmt_sym").matrix,
            session.prepare("tmt_sym").lower,
            session.placement("tmt_sym", "block", N_TILES),
            None,
        )
        with _lowering_env(reference=False):
            vec_key = program_cache_key(
                session.cache, CONFIG, matrix, lower, placement,
            )
        with _lowering_env(reference=True):
            ref_key = program_cache_key(
                session.cache, CONFIG, matrix, lower, placement,
            )
        assert vec_key != ref_key

    def test_use_cache_false_always_builds(self, session):
        session.compiled_program("tmt_sym", mapper="block", use_cache=False)
        session.compiled_program("tmt_sym", mapper="block", use_cache=False)
        requests, builds, hits = self._compile_counters()
        assert (requests, builds, hits) == (2.0, 2.0, 0.0)

"""White-box tests of simulator internals: link serialization, spills,
determinism, and tree forwarding costs."""

import numpy as np
import pytest

from repro.comm import TorusGeometry
from repro.config import AzulConfig
from repro.core import map_block, map_round_robin
from repro.dataflow import build_spmv_program, build_sptrsv_program
from repro.precond import ic0
from repro.sim import AZUL_PE, IDEAL_PE, KernelSimulator
from repro.sparse import COOMatrix, coo_to_csr
from repro.sparse import generators as gen


def _dense_column_matrix(n):
    """One dense column: every row depends on v_0 (a big multicast)."""
    rows = list(range(n)) + list(range(n))
    cols = [0] * n + list(range(n))
    vals = [1.0] * n + [2.0] * n
    return coo_to_csr(COOMatrix(rows, cols, vals, (n, n))).sort_indices()


class TestLinkSerialization:
    def test_per_link_counts_sum_to_total(self):
        matrix = gen.random_spd(40, nnz_per_row=4, seed=1)
        lower = ic0(matrix)
        placement = map_round_robin(matrix, lower, 16)
        torus = TorusGeometry(4, 4)
        config = AzulConfig(mesh_rows=4, mesh_cols=4)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, torus
        )
        result = KernelSimulator(program, torus, config, AZUL_PE).run(
            x=np.ones(40)
        )
        assert sum(result.per_link.values()) == result.link_activations
        # Every recorded link must be a real torus link.
        links = set(torus.all_links())
        assert set(result.per_link) <= links

    def test_one_flit_per_link_per_cycle(self):
        """The busiest link cannot carry more flits than elapsed cycles."""
        matrix = gen.random_spd(60, nnz_per_row=6, seed=2)
        lower = ic0(matrix)
        placement = map_round_robin(matrix, lower, 16)
        torus = TorusGeometry(4, 4)
        config = AzulConfig(mesh_rows=4, mesh_cols=4)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, torus
        )
        result = KernelSimulator(program, torus, config, AZUL_PE).run(
            x=np.ones(60)
        )
        busiest = max(result.per_link.values())
        assert busiest <= result.cycles


class TestSpills:
    def test_small_buffer_spills_more(self):
        matrix = _dense_column_matrix(64)
        lower = matrix.lower_triangle()
        placement = map_round_robin(matrix, lower, 16)
        torus = TorusGeometry(4, 4)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, torus
        )
        x = np.ones(64)
        big = KernelSimulator(
            program, torus,
            AzulConfig(mesh_rows=4, mesh_cols=4, msg_buffer_entries=4096),
            AZUL_PE,
        ).run(x=x)
        small = KernelSimulator(
            program, torus,
            AzulConfig(mesh_rows=4, mesh_cols=4, msg_buffer_entries=1),
            AZUL_PE,
        ).run(x=x)
        assert big.spills == 0
        assert small.spills > 0
        # Spilling adds SRAM round-trips: never faster.
        assert small.cycles >= big.cycles
        # And never changes the numbers.
        assert np.allclose(small.output, big.output)


class TestDeterminism:
    def test_identical_runs_are_bitwise_identical(self):
        matrix = gen.random_geometric_fem(50, avg_degree=5, seed=3)
        lower = ic0(matrix)
        placement = map_block(matrix, lower, 16)
        torus = TorusGeometry(4, 4)
        config = AzulConfig(mesh_rows=4, mesh_cols=4)
        program = build_sptrsv_program(
            lower, placement.l_tile, placement.vec_tile, torus
        )
        b = gen.make_rhs(matrix, seed=4)
        first = KernelSimulator(program, torus, config, AZUL_PE).run(b=b)
        second = KernelSimulator(program, torus, config, AZUL_PE).run(b=b)
        assert first.cycles == second.cycles
        assert first.op_counts == second.op_counts
        assert np.array_equal(first.output, second.output)


class TestMulticastCost:
    def test_tree_beats_point_to_point_serialization(self):
        """One dense column multicast: with a tree, the root issues one
        Send; the value fans out in the routers."""
        n = 64
        matrix = _dense_column_matrix(n)
        lower = matrix.lower_triangle()
        placement = map_round_robin(matrix, lower, 16)
        torus = TorusGeometry(4, 4)
        config = AzulConfig(mesh_rows=4, mesh_cols=4)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, torus
        )
        result = KernelSimulator(program, torus, config, IDEAL_PE).run(
            x=np.ones(n)
        )
        # Tree edges bound: a spanning tree of <= 16 tiles has <= 15
        # edges, so the column-0 multicast costs at most 15 link
        # activations rather than ~16 unicast paths' worth.
        tree = program.mcast_trees[0][0]
        assert tree.n_link_activations <= 15

    def test_issue_trace_records_all_ops(self):
        matrix = gen.random_spd(30, nnz_per_row=4, seed=5)
        lower = ic0(matrix)
        placement = map_block(matrix, lower, 16)
        torus = TorusGeometry(4, 4)
        config = AzulConfig(mesh_rows=4, mesh_cols=4)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, torus
        )
        result = KernelSimulator(
            program, torus, config, AZUL_PE, record_issue_trace=True
        ).run(x=np.ones(30))
        assert len(result.issue_trace) == sum(result.op_counts.values())
        assert max(entry[0] for entry in result.issue_trace) <= result.cycles
        tiles = {entry[1] for entry in result.issue_trace}
        assert tiles <= set(range(16))


class TestReductionSemantics:
    def test_adds_only_for_remote_partials(self):
        """A fully-local mapping needs no reduction Adds at all."""
        matrix = gen.random_spd(30, nnz_per_row=4, seed=6)
        lower = ic0(matrix)
        placement = map_round_robin(matrix, lower, 1)
        torus = TorusGeometry(1, 1)
        config = AzulConfig(mesh_rows=1, mesh_cols=1)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, torus
        )
        result = KernelSimulator(program, torus, config, AZUL_PE).run(
            x=np.ones(30)
        )
        assert result.op_counts["add"] == 0
        assert result.op_counts["send"] == 0
        assert result.link_activations == 0

    def test_remote_rows_produce_adds(self):
        matrix = gen.random_spd(40, nnz_per_row=5, seed=7)
        lower = ic0(matrix)
        placement = map_round_robin(matrix, lower, 16)
        torus = TorusGeometry(4, 4)
        config = AzulConfig(mesh_rows=4, mesh_cols=4)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, torus
        )
        result = KernelSimulator(program, torus, config, AZUL_PE).run(
            x=np.ones(40)
        )
        assert result.op_counts["add"] > 0
        assert result.op_counts["send"] > 0

"""Tests for the data-mapping strategies and traffic analysis."""

import numpy as np
import pytest

from repro.comm import TorusGeometry
from repro.config import AzulConfig
from repro.core import (
    MAPPERS,
    Placement,
    analyze_traffic,
    build_pcg_hypergraph,
    depth_quantile_weights,
    get_mapper,
    map_azul,
    map_block,
    map_round_robin,
    map_sparsep,
    placement_stats,
)
from repro.core.placement import pin_diagonals
from repro.errors import CapacityError, MappingError
from repro.hypergraph import PartitionerOptions
from repro.precond import ic0
from repro.sparse import generators as gen


@pytest.fixture(scope="module")
def pcg_operands():
    """A small mesh matrix with its IC(0) factor."""
    matrix = gen.random_geometric_fem(60, avg_degree=6, dofs_per_node=1, seed=1)
    lower = ic0(matrix)
    return matrix, lower


N_TILES = 16
TORUS = TorusGeometry(4, 4)


class TestPlacement:
    def test_rejects_out_of_range_tiles(self, pcg_operands):
        matrix, lower = pcg_operands
        with pytest.raises(MappingError):
            Placement(
                n_tiles=4,
                a_tile=np.full(matrix.nnz, 99),
                l_tile=np.zeros(lower.nnz, dtype=int),
                vec_tile=np.zeros(matrix.n_rows, dtype=int),
            )

    def test_capacity_validation(self, pcg_operands):
        matrix, lower = pcg_operands
        placement = map_round_robin(matrix, lower, N_TILES)
        placement.validate_capacity(AzulConfig())  # plenty of room
        tiny = AzulConfig().with_(data_sram_bytes=64)
        with pytest.raises(CapacityError):
            placement.validate_capacity(tiny)

    def test_pin_diagonals(self, pcg_operands):
        matrix, lower = pcg_operands
        placement = map_block(matrix, lower, N_TILES)
        indptr, indices = lower.indptr, lower.indices
        for i in range(lower.n_rows):
            for k in range(indptr[i], indptr[i + 1]):
                if indices[k] == i:
                    assert placement.l_tile[k] == placement.vec_tile[i]

    def test_stats(self, pcg_operands):
        matrix, lower = pcg_operands
        stats = placement_stats(map_round_robin(matrix, lower, N_TILES))
        assert stats["n_tiles"] == N_TILES
        assert stats["nnz_imbalance"] >= 1.0


class TestPositionBasedMappers:
    def test_round_robin_balances_perfectly(self, pcg_operands):
        matrix, lower = pcg_operands
        placement = map_round_robin(matrix, lower, N_TILES)
        counts = np.bincount(placement.a_tile, minlength=N_TILES)
        assert counts.max() - counts.min() <= 1

    def test_block_is_contiguous(self, pcg_operands):
        matrix, lower = pcg_operands
        placement = map_block(matrix, lower, N_TILES)
        assert np.all(np.diff(placement.a_tile) >= 0)

    def test_block_balances(self, pcg_operands):
        matrix, lower = pcg_operands
        placement = map_block(matrix, lower, N_TILES)
        counts = np.bincount(placement.a_tile, minlength=N_TILES)
        assert counts.max() <= -(-matrix.nnz // N_TILES)

    def test_sparsep_balances_nnz(self, pcg_operands):
        matrix, lower = pcg_operands
        placement = map_sparsep(matrix, lower, N_TILES)
        counts = np.bincount(placement.a_tile, minlength=N_TILES)
        # Coordinate chunking is approximately balanced.
        assert counts.max() < 3 * matrix.nnz / N_TILES

    def test_sparsep_chunks_are_coordinate_rectangles(self, pcg_operands):
        matrix, lower = pcg_operands
        placement = map_sparsep(matrix, lower, N_TILES)
        rows = np.repeat(np.arange(matrix.n_rows), matrix.row_nnz())
        cols = matrix.indices
        # Each partition's columns must be contiguous.
        for tile in range(N_TILES):
            members = placement.a_tile == tile
            if not members.any():
                continue
            tile_cols = np.unique(cols[members])
            tile_rows = np.unique(rows[members])
            # Contiguity in coordinate space: the span equals the count
            # only if no other tile's chunk interleaves. Columns of one
            # chunk come from one contiguous column range.
            assert tile_cols[-1] - tile_cols[0] < matrix.n_cols


class TestQuantiles:
    def test_one_hot_partition(self):
        depths = np.array([0, 0, 1, 2, 3, 4, 5, 9, 9, 10])
        weights = depth_quantile_weights(depths, q=5)
        assert weights.shape == (10, 5)
        assert np.allclose(weights.sum(axis=1), 1.0)
        assert np.allclose(weights.sum(axis=0), 2.0)  # equal-count buckets

    def test_ordering_respected(self):
        depths = np.array([5, 1, 3, 0, 4, 2])
        weights = depth_quantile_weights(depths, q=3)
        buckets = weights.argmax(axis=1)
        # Deeper vertices land in later buckets.
        assert buckets[np.argsort(depths)].tolist() == [0, 0, 1, 1, 2, 2]

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            depth_quantile_weights(np.array([1.0]), q=0)


class TestAzulHypergraph:
    def test_vertex_count(self, pcg_operands):
        matrix, lower = pcg_operands
        hg = build_pcg_hypergraph(matrix, lower)
        assert hg.n_vertices == matrix.nnz + lower.nnz + matrix.n_rows

    def test_constraint_columns(self, pcg_operands):
        matrix, lower = pcg_operands
        hg = build_pcg_hypergraph(matrix, lower, q=5)
        assert hg.n_constraints == 6  # bytes + 5 quantiles
        hg_plain = build_pcg_hypergraph(matrix, lower, q=0)
        assert hg_plain.n_constraints == 1

    def test_row_edges_weighted_higher(self, pcg_operands):
        matrix, lower = pcg_operands
        hg = build_pcg_hypergraph(matrix, lower, row_weight=2.0)
        weights = np.unique(hg.edge_weights)
        assert set(weights) == {1.0, 2.0}

    def test_edges_connect_nnz_to_vec_slots(self, pcg_operands):
        matrix, lower = pcg_operands
        hg = build_pcg_hypergraph(matrix, lower)
        vec_offset = matrix.nnz + lower.nnz
        # Every edge must include exactly one vector slot.
        for e in range(hg.n_edges):
            pins = hg.edge_pins(e)
            assert int((pins >= vec_offset).sum()) == 1


class TestAzulMapping:
    def test_produces_valid_placement(self, pcg_operands):
        matrix, lower = pcg_operands
        placement = map_azul(
            matrix, lower, N_TILES,
            options=PartitionerOptions.speed(seed=2),
        )
        assert placement.mapper == "azul"
        assert placement.a_tile.max() < N_TILES
        placement.validate_capacity(AzulConfig())

    def test_beats_position_mappers_on_traffic(self, pcg_operands):
        """The headline claim (Fig. 11): Azul mapping slashes NoC traffic."""
        matrix, lower = pcg_operands
        azul = map_azul(
            matrix, lower, N_TILES,
            options=PartitionerOptions.speed(seed=3),
        )
        rr = map_round_robin(matrix, lower, N_TILES)
        azul_traffic = analyze_traffic(azul, matrix, lower, TORUS)
        rr_traffic = analyze_traffic(rr, matrix, lower, TORUS)
        assert (
            azul_traffic.total_link_activations
            < 0.5 * rr_traffic.total_link_activations
        )

    def test_q0_disables_time_balancing(self, pcg_operands):
        matrix, lower = pcg_operands
        placement = map_azul(
            matrix, lower, N_TILES, q=0,
            options=PartitionerOptions.speed(seed=4),
        )
        assert placement.mapper == "azul_nnz_balanced"


class TestTrafficAnalysis:
    def test_single_tile_has_no_traffic(self, pcg_operands):
        matrix, lower = pcg_operands
        placement = map_round_robin(matrix, lower, 1)
        report = analyze_traffic(placement, matrix, lower, TorusGeometry(1, 1))
        assert report.total_messages == 0
        assert report.total_link_activations == 0

    def test_three_kernels_reported(self, pcg_operands):
        matrix, lower = pcg_operands
        report = analyze_traffic(
            map_block(matrix, lower, N_TILES), matrix, lower, TORUS
        )
        assert [k.name for k in report.kernels] == [
            "spmv", "sptrsv_lower", "sptrsv_upper",
        ]

    def test_messages_bounded_by_set_sizes(self, pcg_operands):
        """A communication set on N tiles induces at most N-1 messages."""
        matrix, lower = pcg_operands
        placement = map_round_robin(matrix, lower, N_TILES)
        report = analyze_traffic(placement, matrix, lower, TORUS)
        spmv = report.kernels[0]
        # Upper bound: every nonzero on a foreign tile.
        assert spmv.multicast_messages <= matrix.nnz
        assert spmv.reduction_messages <= matrix.nnz

    def test_max_link_load_positive(self, pcg_operands):
        matrix, lower = pcg_operands
        report = analyze_traffic(
            map_round_robin(matrix, lower, N_TILES), matrix, lower, TORUS
        )
        assert report.max_link_load() > 0


class TestRegistry:
    def test_all_mappers_registered(self):
        assert set(MAPPERS) == {"round_robin", "block", "sparsep", "azul"}

    def test_get_mapper(self):
        assert get_mapper("block") is map_block
        with pytest.raises(KeyError):
            get_mapper("magic")

"""Tests for the cycle-level simulator."""

import numpy as np
import pytest

from repro.comm import TorusGeometry
from repro.config import AzulConfig
from repro.core import map_azul, map_block, map_round_robin
from repro.dataflow import build_spmv_program, build_sptrsv_program
from repro.errors import SimulationError
from repro.hypergraph import PartitionerOptions
from repro.precond import ic0
from repro.sim import (
    AZUL_PE,
    AZUL_PE_SINGLE_THREADED,
    DALOREX_PE,
    IDEAL_PE,
    AzulMachine,
    KernelSimulator,
    breakdown_from_results,
    pe_model_by_name,
)
from repro.sparse import generators as gen
from repro.sparse.ops import sptrsv_lower as ref_sptrsv_lower


@pytest.fixture(scope="module")
def operands():
    matrix = gen.random_geometric_fem(60, avg_degree=6, dofs_per_node=1, seed=9)
    lower = ic0(matrix)
    b = gen.make_rhs(matrix, seed=10)
    return matrix, lower, b


CONFIG = AzulConfig(mesh_rows=4, mesh_cols=4)
TORUS = TorusGeometry(4, 4)
N_TILES = 16


def _machine(pe=AZUL_PE):
    return AzulMachine(CONFIG, pe)


class TestFunctionalCorrectness:
    """The paper's check: simulator output must match the reference."""

    def test_spmv_output(self, operands, rng):
        matrix, lower, _ = operands
        placement = map_round_robin(matrix, lower, N_TILES)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, TORUS
        )
        x = rng.standard_normal(matrix.n_rows)
        result = KernelSimulator(program, TORUS, CONFIG, AZUL_PE).run(x=x)
        assert np.allclose(result.output, matrix.spmv(x))

    def test_sptrsv_output(self, operands, rng):
        matrix, lower, _ = operands
        placement = map_round_robin(matrix, lower, N_TILES)
        program = build_sptrsv_program(
            lower, placement.l_tile, placement.vec_tile, TORUS
        )
        b = rng.standard_normal(matrix.n_rows)
        result = KernelSimulator(program, TORUS, CONFIG, AZUL_PE).run(b=b)
        assert np.allclose(result.output, ref_sptrsv_lower(lower, b))

    def test_full_iteration_verified(self, operands):
        matrix, lower, b = operands
        placement = map_block(matrix, lower, N_TILES)
        # simulate_pcg(check=True) raises on any numeric mismatch.
        result = _machine().simulate_pcg(matrix, lower, placement, b)
        assert result.total_cycles > 0

    @pytest.mark.parametrize(
        "pe", [AZUL_PE, AZUL_PE_SINGLE_THREADED, DALOREX_PE, IDEAL_PE]
    )
    def test_all_pe_models_functionally_identical(self, operands, pe):
        """Timing models must never change computed values."""
        matrix, lower, b = operands
        placement = map_block(matrix, lower, N_TILES)
        result = _machine(pe).simulate_pcg(matrix, lower, placement, b)
        assert result.total_cycles > 0

    def test_missing_inputs_rejected(self, operands):
        matrix, lower, _ = operands
        placement = map_block(matrix, lower, N_TILES)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, TORUS
        )
        with pytest.raises(SimulationError):
            KernelSimulator(program, TORUS, CONFIG, AZUL_PE).run()


class TestTimingProperties:
    def test_ideal_pe_is_fastest(self, operands):
        matrix, lower, b = operands
        placement = map_block(matrix, lower, N_TILES)
        ideal = _machine(IDEAL_PE).simulate_pcg(matrix, lower, placement, b)
        azul = _machine(AZUL_PE).simulate_pcg(matrix, lower, placement, b)
        dalorex = _machine(DALOREX_PE).simulate_pcg(
            matrix, lower, placement, b
        )
        assert ideal.total_cycles <= azul.total_cycles
        assert azul.total_cycles < dalorex.total_cycles

    def test_multithreading_helps(self, operands):
        """Fig. 27: multithreaded PEs beat single-threaded ones."""
        matrix, lower, b = operands
        placement = map_block(matrix, lower, N_TILES)
        multi = _machine(AZUL_PE).simulate_pcg(matrix, lower, placement, b)
        single = _machine(AZUL_PE_SINGLE_THREADED).simulate_pcg(
            matrix, lower, placement, b
        )
        assert multi.total_cycles < single.total_cycles

    def test_azul_mapping_beats_round_robin(self, operands):
        """Fig. 2/23 at small scale: the mapping drives performance."""
        matrix, lower, b = operands
        azul_placement = map_azul(
            matrix, lower, N_TILES,
            options=PartitionerOptions.speed(seed=5),
        )
        rr_placement = map_round_robin(matrix, lower, N_TILES)
        machine = _machine()
        azul = machine.simulate_pcg(matrix, lower, azul_placement, b)
        rr = machine.simulate_pcg(matrix, lower, rr_placement, b)
        assert azul.link_activations() < rr.link_activations()
        assert azul.total_cycles <= rr.total_cycles

    def test_hop_latency_slows_execution(self, operands):
        """Fig. 25: higher per-hop latency costs some throughput."""
        matrix, lower, b = operands
        placement = map_round_robin(matrix, lower, N_TILES)
        fast = AzulMachine(CONFIG.with_(hop_cycles=1)).simulate_pcg(
            matrix, lower, placement, b
        )
        slow = AzulMachine(CONFIG.with_(hop_cycles=4)).simulate_pcg(
            matrix, lower, placement, b
        )
        assert slow.total_cycles > fast.total_cycles

    def test_sram_latency_slows_execution(self, operands):
        """Fig. 26 analog."""
        matrix, lower, b = operands
        placement = map_round_robin(matrix, lower, N_TILES)
        fast = AzulMachine(CONFIG.with_(sram_access_cycles=1)).simulate_pcg(
            matrix, lower, placement, b
        )
        slow = AzulMachine(CONFIG.with_(sram_access_cycles=4)).simulate_pcg(
            matrix, lower, placement, b
        )
        assert slow.total_cycles > fast.total_cycles

    def test_single_tile_runs_serially(self, operands):
        matrix, lower, b = operands
        config = AzulConfig(mesh_rows=1, mesh_cols=1)
        placement = map_round_robin(matrix, lower, 1)
        result = AzulMachine(config).simulate_pcg(matrix, lower, placement, b)
        # One PE, one op/cycle: cycles at least the total op count.
        spmv = result.kernel_results[0]
        assert spmv.cycles >= matrix.nnz
        assert result.link_activations() == 0


class TestStatsAccounting:
    def test_op_counts(self, operands):
        matrix, lower, b = operands
        placement = map_block(matrix, lower, N_TILES)
        result = _machine().simulate_pcg(matrix, lower, placement, b)
        spmv = result.kernel_results[0]
        assert spmv.op_counts["fmac"] == matrix.nnz
        assert spmv.op_counts["mul"] == 0
        forward = result.kernel_results[1]
        assert forward.op_counts["fmac"] == lower.nnz - lower.n_rows
        assert forward.op_counts["mul"] == lower.n_rows

    def test_gflops_positive_and_below_peak(self, operands):
        matrix, lower, b = operands
        placement = map_block(matrix, lower, N_TILES)
        result = _machine().simulate_pcg(matrix, lower, placement, b)
        assert 0 < result.gflops()
        assert result.utilization() < 1.0

    def test_cycle_breakdown_sums_to_one(self, operands):
        matrix, lower, b = operands
        placement = map_block(matrix, lower, N_TILES)
        result = _machine().simulate_pcg(matrix, lower, placement, b)
        breakdown = breakdown_from_results(
            result.kernel_results, N_TILES,
            extra_cycles=result.vector_cycles,
        )
        total = sum(breakdown.as_dict().values())
        assert abs(total - 1.0) < 1e-9
        assert breakdown.fmac > 0
        assert breakdown.stall >= 0

    def test_per_phase_cycles(self, operands):
        matrix, lower, b = operands
        placement = map_block(matrix, lower, N_TILES)
        result = _machine().simulate_pcg(matrix, lower, placement, b)
        phases = result.cycles_by_phase()
        assert set(phases) == {
            "spmv", "sptrsv_lower", "sptrsv_upper", "vector",
        }
        assert sum(phases.values()) == result.total_cycles

    def test_placement_machine_mismatch_rejected(self, operands):
        matrix, lower, b = operands
        placement = map_block(matrix, lower, 4)  # wrong tile count
        with pytest.raises(SimulationError):
            _machine().simulate_pcg(matrix, lower, placement, b)

    def test_pe_model_lookup(self):
        assert pe_model_by_name("dalorex") is DALOREX_PE
        with pytest.raises(KeyError):
            pe_model_by_name("cerebras")

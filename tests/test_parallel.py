"""Tests for :mod:`repro.parallel` (process-parallel sweep execution).

The contract under test: ``simulate_many(points, jobs=N)`` returns, in
point order, exactly what a serial loop of ``session.simulate`` calls
returns — through cache hits, in-flight dedup, real worker processes,
and the serial fallback after worker failures.
"""

import numpy as np
import pytest

from repro import parallel
from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession
from repro.parallel import SimPoint, default_jobs, simulate_many

TINY = AzulConfig(mesh_rows=4, mesh_cols=4)
MATRIX = "tmt_sym"


@pytest.fixture
def fresh_cache(monkeypatch, tmp_path):
    """A private on-disk cache for one test (parent and workers)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def _timings_equal(left, right):
    assert left.total_cycles == right.total_cycles
    for a, b in zip(left.kernel_results, right.kernel_results):
        assert a.cycles == b.cycles
        assert a.op_counts == b.op_counts
        assert a.spills == b.spills
        assert np.array_equal(a.output, b.output)


class TestSimPoint:
    def test_coercion(self):
        assert parallel._coerce(MATRIX) == SimPoint(name=MATRIX)
        assert parallel._coerce({"name": MATRIX, "check": False}) \
            == SimPoint(name=MATRIX, check=False)
        point = SimPoint(MATRIX)
        assert parallel._coerce(point) is point
        with pytest.raises(TypeError):
            parallel._coerce(42)

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.setenv(parallel.ENV_JOBS, "3")
        assert default_jobs() == 3
        monkeypatch.setenv(parallel.ENV_JOBS, "not-a-number")
        assert default_jobs() >= 1
        monkeypatch.delenv(parallel.ENV_JOBS)
        assert 1 <= default_jobs() <= 8


class TestSimulateMany:
    def test_matches_serial_and_dedups(self, fresh_cache):
        session = ExperimentSession(TINY)
        serial = session.simulate(MATRIX, "azul", "azul", check=False)
        points = [
            SimPoint(MATRIX, check=False),
            SimPoint(MATRIX, check=False),   # duplicate: computed once
            SimPoint(MATRIX, mapper="round_robin", pe="dalorex",
                     check=False),
        ]
        stats = {}
        results = session.simulate_many(points, jobs=1, stats=stats)
        assert stats["points"] == 3
        assert stats["unique"] == 2
        assert stats["deduplicated"] == 1
        _timings_equal(results[0], serial)
        _timings_equal(results[1], serial)
        assert results[0] is results[1]
        assert results[2].total_cycles != results[0].total_cycles

    def test_parallel_identical_to_serial(self, fresh_cache):
        points = [
            SimPoint(MATRIX, check=False),
            SimPoint(MATRIX, mapper="round_robin", pe="dalorex",
                     check=False),
        ]
        serial_stats = {}
        serial = ExperimentSession(TINY).simulate_many(
            points, jobs=1, use_cache=False, stats=serial_stats,
        )
        parallel_stats = {}
        fanned = ExperimentSession(TINY).simulate_many(
            points, jobs=2, stats=parallel_stats,
        )
        assert serial_stats["computed_serial"] == 2
        assert parallel_stats["computed_parallel"] == 2
        assert parallel_stats["worker_failures"] == 0
        for a, b in zip(serial, fanned):
            _timings_equal(a, b)

    def test_cache_hits_short_circuit(self, fresh_cache):
        points = [SimPoint(MATRIX, check=False)]
        first = ExperimentSession(TINY)
        warm = first.simulate_many(points, jobs=1)
        stats = {}
        second = ExperimentSession(TINY)
        cached = second.simulate_many(points, jobs=4, stats=stats)
        assert stats["cache_hits"] == 1
        assert stats["computed_parallel"] == 0
        assert stats["computed_serial"] == 0
        _timings_equal(warm[0], cached[0])

    def test_workers_populate_shared_cache(self, fresh_cache):
        """A jobs>1 sweep leaves the next session fully cached."""
        points = [
            SimPoint(MATRIX, check=False),
            SimPoint(MATRIX, mapper="round_robin", pe="dalorex",
                     check=False),
        ]
        ExperimentSession(TINY).simulate_many(points, jobs=2)
        stats = {}
        ExperimentSession(TINY).simulate_many(points, jobs=2, stats=stats)
        assert stats["cache_hits"] == 2
        assert stats["computed_parallel"] == 0

    def test_worker_failure_falls_back_to_serial(self, fresh_cache,
                                                 monkeypatch):
        """A crashing pool demotes points to in-process computation."""
        def broken_pool(pending, jobs, info, worker=None):
            info["worker_failures"] += len(pending)
            return {}

        monkeypatch.setattr(parallel, "_run_pool", broken_pool)
        session = ExperimentSession(TINY)
        stats = {}
        results = session.simulate_many(
            [SimPoint(MATRIX, check=False),
             SimPoint(MATRIX, pe="ideal", check=False)],
            jobs=2, stats=stats,
        )
        assert stats["worker_failures"] == 2
        assert stats["computed_serial"] == 2
        reference = session.simulate(MATRIX, "azul", "azul", check=False)
        _timings_equal(results[0], reference)

    def test_run_pool_isolates_single_crash(self):
        """One bad point fails alone; the rest still compute in workers."""
        pending = [
            ("good", [0], {"value": 3}),
            ("bad", [1], {"value": None}),
        ]
        info = {"computed_parallel": 0, "worker_failures": 0}
        computed = parallel._run_pool(
            pending, 2, info, worker=_square_or_crash,
        )
        assert computed["good"] == 9
        assert computed["bad"] is parallel._FAILED
        assert info["computed_parallel"] == 1
        assert info["worker_failures"] == 1

    def test_invalid_matrix_raises(self, fresh_cache):
        session = ExperimentSession(TINY)
        with pytest.raises(ValueError):
            session.simulate_many([SimPoint("not_a_matrix")], jobs=1)


def _square_or_crash(spec):
    """Module-level worker (picklable) used by the crash-isolation test."""
    value = spec["value"]
    if value is None:
        raise RuntimeError("synthetic worker crash")
    return value * value


class TestSimulatePlacements:
    def test_matches_direct_simulation(self, fresh_cache):
        session = ExperimentSession(TINY)
        placement = session.placement(MATRIX, "azul")
        direct = session.simulate(MATRIX, "azul", "azul", check=False)
        stats = {}
        results = session.simulate_placements(
            MATRIX, [placement, placement], check=False, jobs=1,
            stats=stats,
        )
        # Identical placements share one computation and one cache slot.
        assert stats["unique"] == 1
        assert stats["deduplicated"] == 1
        _timings_equal(results[0], direct)
        assert results[0] is results[1]

    def test_per_point_overrides(self, fresh_cache):
        session = ExperimentSession(TINY)
        placement = session.placement(MATRIX, "azul")
        tree, unicast = session.simulate_placements(placements=[
            {"name": MATRIX, "placement": placement,
             "multicast": "tree", "check": False},
            {"name": MATRIX, "placement": placement,
             "multicast": "unicast", "check": False},
        ], jobs=1)
        assert unicast.link_activations() > tree.link_activations()

    def test_results_are_cached(self, fresh_cache):
        session = ExperimentSession(TINY)
        placement = session.placement(MATRIX, "azul")
        session.simulate_placements(MATRIX, [placement], check=False,
                                    jobs=1)
        stats = {}
        again = ExperimentSession(TINY).simulate_placements(
            MATRIX, [placement], check=False, jobs=1, stats=stats,
        )
        assert stats["cache_hits"] == 1
        assert again[0].total_cycles > 0

    def test_missing_name_raises(self, fresh_cache):
        session = ExperimentSession(TINY)
        placement = session.placement(MATRIX, "azul")
        with pytest.raises(ValueError):
            session.simulate_placements(placements=[placement])

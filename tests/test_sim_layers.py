"""Unit tests for the layered simulator core and its contracts.

Covers each layer in isolation — event queue determinism, link
serialization, multicast-plan flattening, numeric state bookkeeping,
issue-strategy resolution — plus the two cross-cutting guarantees:

* the import-layer contract (``tools/check_layers.py``, the offline
  twin of the ``.importlinter`` CI job) holds over the whole tree;
* geometry construction is routed through
  :func:`repro.comm.make_geometry` everywhere, so
  ``AzulConfig(topology="mesh")`` is honored by the CLI, the
  experiments, and the machine (the regression behind the satellite
  bugfix: fig11/abl_quantiles/cli used to hard-code ``TorusGeometry``).
"""

import ast
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.comm import MeshGeometry, TorusGeometry, make_geometry
from repro.comm.multicast import build_multicast_tree
from repro.comm.reduction import build_reduction_tree
from repro.config import AzulConfig
from repro.sim.events import (
    EV_MCAST,
    EV_PARTIAL,
    EV_PUMP,
    NEVER,
    EventQueue,
    drain,
)
from repro.sim.fabric import FabricModel, LinkFabric, flatten_multicast_plan
from repro.sim.issue import (
    STRATEGIES,
    BatchedIssue,
    PerOpIssue,
    resolve_strategy,
)
from repro.sim.state import KernelState, TileState

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------
class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(5, EV_PUMP, "late")
        queue.push(1, EV_PUMP, "early")
        queue.push(3, EV_PUMP, "mid")
        assert [queue.pop()[3] for _ in range(3)] == ["early", "mid", "late"]

    def test_ties_pop_in_push_order(self):
        queue = EventQueue()
        for i in range(10):
            queue.push(7, EV_PUMP, i)
        assert [queue.pop()[3] for _ in range(10)] == list(range(10))

    def test_next_time_and_never(self):
        queue = EventQueue()
        assert queue.next_time() == NEVER
        assert queue.next_time(default=-1) == -1
        queue.push(42, EV_MCAST, None)
        assert queue.next_time() == 42
        assert len(queue) == 1 and bool(queue)

    def test_drain_dispatches_by_kind(self):
        queue = EventQueue()
        queue.push(2, EV_MCAST, "m")
        queue.push(1, EV_PUMP, "p")
        queue.push(3, EV_PARTIAL, "r")
        seen = []
        drain(
            queue,
            on_pump=lambda payload, t: seen.append(("pump", payload, t)),
            on_mcast=lambda payload, t: seen.append(("mcast", payload, t)),
            on_partial=lambda payload, t: seen.append(("part", payload, t)),
        )
        assert seen == [("pump", "p", 1), ("mcast", "m", 2),
                        ("part", "r", 3)]
        assert not queue

    def test_drain_handlers_may_push(self):
        """Events scheduled by handlers are drained too (cascade)."""
        queue = EventQueue()
        queue.push(0, EV_PUMP, 3)
        fired = []

        def on_pump(payload, time):
            fired.append(time)
            if payload:
                queue.push(time + 1, EV_PUMP, payload - 1)

        drain(queue, on_pump, lambda p, t: None, lambda p, t: None)
        assert fired == [0, 1, 2, 3]


# ---------------------------------------------------------------------------
# fabric
# ---------------------------------------------------------------------------
class TestLinkFabric:
    def test_serializes_one_flit_per_cycle(self):
        events = EventQueue()
        fabric = LinkFabric(events, hop_cycles=2)
        # Three flits on the same link at the same cycle: departures
        # serialize at t=0,1,2 so arrivals land at 2,3,4.
        for i in range(3):
            fabric.traverse(0, 1, 0, EV_MCAST, i)
        arrivals = sorted(events.pop()[0] for _ in range(3))
        assert arrivals == [2, 3, 4]
        assert fabric.queue_delay == 0 + 1 + 2
        assert fabric.link_count == 3
        assert fabric.per_link == {(0, 1): 3}
        assert fabric.last_arrival == 4

    def test_distinct_links_do_not_contend(self):
        events = EventQueue()
        fabric = LinkFabric(events, hop_cycles=1)
        fabric.traverse(0, 1, 5, EV_PARTIAL, "a")
        fabric.traverse(1, 0, 5, EV_PARTIAL, "b")  # opposite direction
        times = sorted(events.pop()[0] for _ in range(2))
        assert times == [6, 6]
        assert fabric.queue_delay == 0


class TestFlattenMulticastPlan:
    def test_plan_matches_tree(self):
        torus = TorusGeometry(2, 2)
        tree = build_multicast_tree(torus, 0, [1, 2, 3])
        plan, send_plan = flatten_multicast_plan(
            {7: (tree,)}, payload_at=lambda node, j: f"seg-{node}-{j}"
        )
        root, root_children = send_plan[(7, 0)]
        assert root == 0
        assert set(root_children) == set(tree.children.get(0, ()))
        for dest in tree.destinations:
            children, payload = plan[(7, 0, dest)]
            assert payload == f"seg-{dest}-7"
            assert list(children) == list(tree.children.get(dest, ()))
        # The root is not a destination: no payload there.
        assert plan[(7, 0, 0)][1] is None


class TestFabricModel:
    def test_delegates_to_geometry(self):
        for geometry in (TorusGeometry(3, 3), MeshGeometry(3, 3)):
            fabric = FabricModel(geometry, hop_cycles=2)
            assert fabric.n_tiles == 9
            assert fabric.hop_distance(0, 8) \
                == geometry.hop_distance(0, 8)
            assert fabric.all_links() == geometry.all_links()
            assert fabric.reduction_depth() == geometry.reduction_depth()

    def test_trees_match_comm_builders(self):
        geometry = MeshGeometry(2, 3)
        fabric = FabricModel(geometry)
        mcast = fabric.multicast_tree(0, [3, 5])
        expected = build_multicast_tree(geometry, 0, [3, 5])
        assert mcast.edges == expected.edges
        red = fabric.reduction_tree(0, [3, 5])
        assert red.edges == build_reduction_tree(geometry, 0, [3, 5]).edges

    def test_new_link_state_binds_events(self):
        fabric = FabricModel(TorusGeometry(2, 2), hop_cycles=3)
        events = EventQueue()
        link_state = fabric.new_link_state(events)
        assert isinstance(link_state, LinkFabric)
        assert link_state.events is events
        assert link_state.hop_cycles == 3


# ---------------------------------------------------------------------------
# state
# ---------------------------------------------------------------------------
class TestKernelState:
    def test_tile_created_on_first_touch(self):
        state = KernelState(4, [], np.zeros((0, 4), dtype=np.int64),
                    msg_buffer_entries=8, spill_penalty=6)
        assert state.tiles == {}
        tile = state.tile(2)
        assert state.tile(2) is tile
        assert isinstance(tile, TileState)
        # Dummy hazard row: one extra accumulator slot, never written.
        assert len(tile.acc_ready) == 5
        assert tile.local_rem is None

    def test_local_rem_densified_per_tile(self):
        state = KernelState(3, [1], np.array([[2, 0, 1]]), 8, 6)
        assert state.tile(1).local_rem == [2, 0, 1]
        assert state.tile(0).local_rem is None

    def test_enqueue_spills_after_buffer_fills(self):
        state = KernelState(2, [], np.zeros((0, 2), dtype=np.int64),
                    msg_buffer_entries=2, spill_penalty=6)
        t0 = [10, 3, "p", 0, 0, 0, 2]
        state.enqueue(0, t0)
        state.enqueue(0, [10, 3, "q", 0, 0, 0, 2])
        overflow = [10, 3, "r", 0, 0, 0, 2]
        state.enqueue(0, overflow)
        assert state.spills == 1
        assert t0[0] == 10           # in-buffer task untouched
        assert overflow[0] == 16     # delayed by one SRAM round trip

    def test_op_totals_sums_tiles(self):
        state = KernelState(2, [], np.zeros((0, 2), dtype=np.int64), 8, 6)
        state.tile(0).op_counts = [1, 2, 3, 4]
        state.tile(0).busy = 5
        state.tile(1).op_counts = [10, 0, 0, 1]
        state.tile(1).busy = 7
        totals, busy = state.op_totals()
        assert totals == [11, 2, 3, 5]
        assert busy == 12

    def test_partial_value_defaults_to_zero(self):
        state = KernelState(2, [], np.zeros((0, 2), dtype=np.int64), 8, 6)
        assert state.partial_value(3, 1) == 0.0
        state.tile(3).partial[1] = 2.5
        assert state.partial_value(3, 1) == 2.5


# ---------------------------------------------------------------------------
# issue
# ---------------------------------------------------------------------------
class TestIssueRegistry:
    def test_known_strategies(self):
        assert resolve_strategy("reference") is PerOpIssue
        assert resolve_strategy("batched") is BatchedIssue
        assert set(STRATEGIES) == {"reference", "batched"}

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="warp"):
            resolve_strategy("warp")


# ---------------------------------------------------------------------------
# cross-cutting contracts
# ---------------------------------------------------------------------------
def test_layer_contract_holds():
    """The AST layer checker (CI twin of import-linter) reports clean."""
    sys.path.insert(0, str(REPO / "tools"))
    try:
        import check_layers
    finally:
        sys.path.pop(0)
    assert check_layers.check() == []


def test_no_direct_geometry_construction_outside_comm():
    """Everything builds geometries via ``make_geometry(config)``.

    Regression guard for the satellite bugfix: the CLI and several
    experiment modules used to call ``TorusGeometry(rows, cols)``
    directly, silently ignoring ``AzulConfig.topology == "mesh"``.
    """
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC)
        if rel.parts[:2] == ("repro", "comm"):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                func = node.func
                name = getattr(func, "id", getattr(func, "attr", ""))
                if name in ("TorusGeometry", "MeshGeometry"):
                    offenders.append(f"{rel}:{node.lineno}")
    assert offenders == [], (
        "geometry constructed directly (use repro.comm.make_geometry): "
        + ", ".join(offenders)
    )


def test_make_geometry_respects_topology():
    base = dict(mesh_rows=4, mesh_cols=4)
    torus = make_geometry(AzulConfig(**base))
    mesh = make_geometry(AzulConfig(topology="mesh", **base))
    assert isinstance(torus, TorusGeometry)
    assert isinstance(mesh, MeshGeometry)
    # The mesh has no wraparound: corner-to-corner costs more hops.
    assert mesh.hop_distance(0, 15) > torus.hop_distance(0, 15)


def test_machine_fabric_follows_config_topology():
    from repro.sim import AzulMachine

    base = dict(mesh_rows=4, mesh_cols=4)
    machine = AzulMachine(AzulConfig(topology="mesh", **base))
    assert isinstance(machine.fabric, FabricModel)
    assert isinstance(machine.fabric.geometry, MeshGeometry)
    assert machine.torus is machine.fabric.geometry
    assert machine.fabric.hop_cycles == machine.config.hop_cycles


def test_traffic_analysis_accepts_fabric_or_geometry():
    from repro.core import analyze_traffic, map_block
    from repro.precond import ic0
    from repro.sparse import generators as gen

    matrix = gen.grid_laplacian_2d(6, 6)
    lower = ic0(matrix)
    placement = map_block(matrix, lower, 4)
    geometry = TorusGeometry(2, 2)
    via_geometry = analyze_traffic(placement, matrix, lower, geometry)
    via_fabric = analyze_traffic(placement, matrix, lower,
                                 FabricModel(geometry))
    assert via_geometry.total_link_activations \
        == via_fabric.total_link_activations
    assert via_geometry.total_messages == via_fabric.total_messages
    # And the topology changes the static traffic (the bug this guards
    # against silently produced torus numbers for mesh configs).
    mesh_report = analyze_traffic(placement, matrix, lower,
                                  MeshGeometry(2, 2))
    assert mesh_report.total_messages == via_geometry.total_messages
    assert mesh_report.kernels[0].name == "spmv"


def test_vector_phase_accepts_fabric():
    """Solver timing passes the fabric where a geometry used to go."""
    from repro.dataflow.vector_ops import dot_allreduce_cycles

    config = AzulConfig(mesh_rows=4, mesh_cols=4)
    vec_tile = np.zeros(16, dtype=np.int64)
    geometry = make_geometry(config)
    direct = dot_allreduce_cycles(vec_tile, geometry, config)
    via_fabric = dot_allreduce_cycles(
        vec_tile, FabricModel(geometry, config.hop_cycles), config
    )
    assert direct == via_fabric

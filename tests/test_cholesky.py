"""Tests for symbolic Cholesky / fill-in analysis."""

import numpy as np
import pytest

from repro.sparse import COOMatrix, coo_to_csr
from repro.sparse import generators as gen
from repro.sparse.cholesky import (
    cholesky_flops,
    direct_vs_iterative_flops,
    elimination_tree,
    symbolic_cholesky,
)


def _dense_factor_pattern(matrix):
    """Reference: nonzero pattern of the dense Cholesky factor."""
    factor = np.linalg.cholesky(matrix.to_dense())
    return np.abs(factor) > 1e-12


class TestEliminationTree:
    def test_tridiagonal_is_a_chain(self):
        matrix = gen.tridiagonal_spd(8)
        parent = elimination_tree(matrix)
        assert list(parent) == [1, 2, 3, 4, 5, 6, 7, -1]

    def test_diagonal_matrix_is_a_forest_of_roots(self):
        n = 5
        eye = coo_to_csr(
            COOMatrix(np.arange(n), np.arange(n), np.ones(n), (n, n))
        )
        assert np.all(elimination_tree(eye) == -1)

    def test_parents_are_later_rows(self, small_spd):
        parent = elimination_tree(small_spd)
        for i, p in enumerate(parent):
            assert p == -1 or p > i


class TestSymbolicCholesky:
    def test_tridiagonal_has_no_fill(self):
        matrix = gen.tridiagonal_spd(12)
        factor = symbolic_cholesky(matrix)
        assert factor.nnz == matrix.lower_triangle().nnz
        assert factor.fill_ratio(matrix) == 1.0

    def test_arrow_matrix_fills_completely(self):
        """An arrow pointing the wrong way: dense first row/column makes
        L completely dense — the classic fill-in example."""
        n = 10
        rows = [0] * n + list(range(n))
        cols = list(range(n)) + list(range(n))
        vals = [1.0] * n + [float(n + 1)] * n
        coo = COOMatrix(
            rows + cols, cols + rows, vals + vals, (n, n)
        ).sum_duplicates()
        matrix = coo_to_csr(coo)
        factor = symbolic_cholesky(matrix)
        assert factor.nnz == n * (n + 1) // 2  # fully dense lower triangle

    def test_pattern_covers_dense_factor(self, small_spd):
        """Symbolic structure must be a superset of the numeric factor's
        nonzeros (equality up to numeric cancellation)."""
        factor = symbolic_cholesky(small_spd)
        dense_pattern = _dense_factor_pattern(small_spd)
        assert factor.nnz >= dense_pattern.sum()
        # Per-row counts dominate the numeric factor's rows.
        numeric_rows = dense_pattern.sum(axis=1)
        assert np.all(factor.row_counts >= numeric_rows)

    def test_fill_exceeds_ic0(self, mesh_matrix):
        """The Sec. II claim: the true factor is denser than tril(A)
        (which is IC(0)'s pattern)."""
        factor = symbolic_cholesky(mesh_matrix)
        assert factor.fill_ratio(mesh_matrix) > 1.0


class TestFlopComparison:
    def test_flops_positive_and_superlinear(self):
        small = gen.grid_laplacian_2d(8, 8)
        large = gen.grid_laplacian_2d(16, 16)
        small_flops = cholesky_flops(small)
        large_flops = cholesky_flops(large)
        assert small_flops > 0
        # 4x the unknowns -> much more than 4x the factorization work.
        assert large_flops > 4 * small_flops

    def test_direct_vs_iterative_dict(self, small_spd):
        from repro.precond import ic0

        lower = ic0(small_spd)
        comparison = direct_vs_iterative_flops(small_spd, lower, 50)
        assert comparison["pcg_total"] == 50 * comparison["pcg_per_iteration"]
        assert comparison["direct_factorization"] > 0


class TestExperiment:
    def test_tab_fill_runs(self):
        from repro.experiments import tab_fill

        result = tab_fill.run(matrices=["tmt_sym", "offshore"])
        for row in result.rows:
            assert row["fill_ratio"] >= 1.0
            assert row["nnz_chol"] >= row["nnz_trilA"]

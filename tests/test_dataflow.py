"""Tests for dataflow program construction."""

import numpy as np
import pytest

from repro.comm import TorusGeometry
from repro.config import AzulConfig
from repro.core import map_block, map_round_robin
from repro.dataflow import (
    build_pcg_program,
    build_spmv_program,
    build_sptrsv_program,
    transpose_with_mapping,
)
from repro.dataflow.vector_ops import (
    VectorPhaseModel,
    axpy_cycles,
    dot_allreduce_cycles,
)
from repro.precond import ic0
from repro.sim.functional import functional_spmv, functional_sptrsv
from repro.sparse import generators as gen
from repro.sparse.ops import sptrsv_lower as ref_sptrsv_lower
from repro.sparse.ops import sptrsv_upper as ref_sptrsv_upper


@pytest.fixture(scope="module")
def operands():
    matrix = gen.random_geometric_fem(50, avg_degree=5, dofs_per_node=1, seed=4)
    lower = ic0(matrix)
    return matrix, lower


TORUS = TorusGeometry(4, 4)
N_TILES = 16


class TestTransposeWithMapping:
    def test_values_follow_mapping(self, operands):
        _, lower = operands
        transposed, source = transpose_with_mapping(lower)
        assert np.allclose(transposed.data, lower.data[source])
        assert np.allclose(transposed.to_dense(), lower.to_dense().T)

    def test_mapping_is_permutation(self, operands):
        _, lower = operands
        _, source = transpose_with_mapping(lower)
        assert np.array_equal(np.sort(source), np.arange(lower.nnz))


class TestSpMVProgram:
    def test_functional_equivalence(self, operands, rng):
        matrix, lower = operands
        placement = map_round_robin(matrix, lower, N_TILES)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, TORUS
        )
        x = rng.standard_normal(matrix.n_rows)
        assert np.allclose(functional_spmv(program, x), matrix.spmv(x))

    def test_total_fmacs_equals_nnz(self, operands):
        matrix, lower = operands
        placement = map_block(matrix, lower, N_TILES)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, TORUS
        )
        assert program.total_fmacs == matrix.nnz
        assert program.flops() == 2 * matrix.nnz

    def test_single_tile_has_no_trees(self, operands):
        matrix, lower = operands
        placement = map_round_robin(matrix, lower, 1)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, TorusGeometry(1, 1)
        )
        assert not program.mcast_trees
        assert not program.red_trees

    def test_local_counts_cover_all_nnz(self, operands):
        matrix, lower = operands
        placement = map_round_robin(matrix, lower, N_TILES)
        program = build_spmv_program(
            matrix, placement.a_tile, placement.vec_tile, TORUS
        )
        assert int(program.local_counts.sum()) == matrix.nnz


class TestSpTRSVProgram:
    def test_forward_functional(self, operands, rng):
        matrix, lower = operands
        placement = map_block(matrix, lower, N_TILES)
        program = build_sptrsv_program(
            lower, placement.l_tile, placement.vec_tile, TORUS
        )
        b = rng.standard_normal(lower.n_rows)
        assert np.allclose(
            functional_sptrsv(program, b), ref_sptrsv_lower(lower, b)
        )

    def test_backward_functional(self, operands, rng):
        matrix, lower = operands
        placement = map_block(matrix, lower, N_TILES)
        program = build_sptrsv_program(
            lower, placement.l_tile, placement.vec_tile, TORUS,
            transpose=True,
        )
        b = rng.standard_normal(lower.n_rows)
        assert np.allclose(
            functional_sptrsv(program, b),
            ref_sptrsv_upper(lower.transpose(), b),
        )

    def test_dependent_flag_and_diag(self, operands):
        matrix, lower = operands
        placement = map_block(matrix, lower, N_TILES)
        program = build_sptrsv_program(
            lower, placement.l_tile, placement.vec_tile, TORUS
        )
        assert program.dependent
        assert np.allclose(program.inv_diag, 1.0 / lower.diagonal())

    def test_off_diagonal_work_only(self, operands):
        matrix, lower = operands
        placement = map_block(matrix, lower, N_TILES)
        program = build_sptrsv_program(
            lower, placement.l_tile, placement.vec_tile, TORUS
        )
        assert program.total_fmacs == lower.nnz - lower.n_rows

    def test_initial_rows_have_no_dependences(self, operands):
        matrix, lower = operands
        placement = map_block(matrix, lower, N_TILES)
        program = build_sptrsv_program(
            lower, placement.l_tile, placement.vec_tile, TORUS
        )
        strict = lower.lower_triangle(include_diagonal=False)
        no_deps = set(np.nonzero(strict.row_nnz() == 0)[0])
        assert set(program.initial_rows) == no_deps
        assert len(program.initial_rows) > 0


class TestVectorPhase:
    def test_dot_cycles_scale_with_elements(self):
        config = AzulConfig(mesh_rows=4, mesh_cols=4)
        few = np.zeros(32, dtype=np.int64)       # all on tile 0
        spread = np.arange(32, dtype=np.int64) % 16
        assert dot_allreduce_cycles(few, TORUS, config) > \
            dot_allreduce_cycles(spread, TORUS, config)

    def test_axpy_cheaper_than_dot(self):
        config = AzulConfig(mesh_rows=4, mesh_cols=4)
        vec_tile = np.arange(64, dtype=np.int64) % 16
        assert axpy_cycles(vec_tile, config) < \
            dot_allreduce_cycles(vec_tile, TORUS, config)

    def test_phase_model_accounting(self):
        config = AzulConfig(mesh_rows=4, mesh_cols=4)
        vec_tile = np.arange(64, dtype=np.int64) % 16
        model = VectorPhaseModel(vec_tile, TORUS, config)
        assert model.cycles() > 0
        assert model.flops(64) == 2 * 64 * 6
        assert model.op_counts(64)["fmac"] == 64 * 6


class TestPCGProgram:
    def test_bundles_three_kernels(self, operands):
        matrix, lower = operands
        placement = map_block(matrix, lower, N_TILES)
        config = AzulConfig(mesh_rows=4, mesh_cols=4)
        program = build_pcg_program(matrix, lower, placement, TORUS, config)
        names = [k.name for k in program.kernels]
        assert names == ["spmv", "sptrsv_lower", "sptrsv_upper"]

    def test_flops_per_iteration(self, operands):
        matrix, lower = operands
        placement = map_block(matrix, lower, N_TILES)
        config = AzulConfig(mesh_rows=4, mesh_cols=4)
        program = build_pcg_program(matrix, lower, placement, TORUS, config)
        n = matrix.n_rows
        expected_sparse = (
            2 * matrix.nnz
            + 2 * (2 * (lower.nnz - n) + n) // 2 * 2  # two solves
        )
        # SpMV + two SpTRSVs + vector phase.
        sparse = 2 * matrix.nnz + 2 * (2 * (lower.nnz - n) + n)
        assert program.flops_per_iteration() == sparse + 2 * n * 6

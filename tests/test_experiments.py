"""Integration tests for the experiment harness.

Uses small matrix subsets and a 4x4-tile machine so the full pipeline
(prepare -> map -> simulate -> summarize) runs quickly; the benchmarks
exercise the full-size configurations.
"""

import pytest

from repro.config import AzulConfig
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments import (
    fig01,
    fig03,
    fig07,
    fig11,
    fig17,
    fig20,
    fig21,
    fig22,
    fig27,
    tab1,
    tab2,
    tab4,
    tab5,
)
from repro.experiments.common import ExperimentSession

SMALL = ["offshore", "tmt_sym"]
TINY_CONFIG = AzulConfig(mesh_rows=4, mesh_cols=4)


class TestCommon:
    def test_prepare_is_cached(self):
        session = ExperimentSession(TINY_CONFIG)
        first = session.prepare("tmt_sym")
        second = session.prepare("tmt_sym")
        assert first is second

    def test_prepare_shared_across_sessions(self):
        first = ExperimentSession(TINY_CONFIG).prepare("tmt_sym")
        second = ExperimentSession(TINY_CONFIG).prepare("tmt_sym")
        assert first is second

    def test_prepare_outputs_consistent(self):
        prepared = ExperimentSession(TINY_CONFIG).prepare("offshore")
        assert prepared.lower.n_rows == prepared.matrix.n_rows
        assert len(prepared.b) == prepared.matrix.n_rows

    def test_placement_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        session = ExperimentSession(TINY_CONFIG)
        fresh = session.placement("tmt_sym", "block", 16)
        cached = session.placement("tmt_sym", "block", 16)
        assert (fresh.a_tile == cached.a_tile).all()
        assert (fresh.vec_tile == cached.vec_tile).all()

    def test_simulate_cached_per_process(self):
        session = ExperimentSession(TINY_CONFIG)
        first = session.simulate("tmt_sym", mapper="block", pe="azul")
        second = session.simulate("tmt_sym", mapper="block", pe="azul")
        assert first is second


class TestDeprecatedWrappersRemoved:
    """The pre-1.x free functions are gone; the session is the API."""

    def test_free_functions_removed(self):
        import repro.experiments.common as common

        for gone in ("prepare", "get_placement", "simulate",
                     "_wrapper_session", "_deprecated"):
            assert not hasattr(common, gone), (
                f"removed wrapper {gone} resurfaced in "
                f"repro.experiments.common"
            )


class TestRunner:
    def test_registry_covers_all_artifacts(self):
        paper_artifacts = {
            "tab4", "fig01", "fig02", "fig03", "tab1", "fig07", "tab2",
            "fig09", "fig10", "fig11", "fig17", "fig20", "fig21",
            "fig22", "fig23", "tabD", "tab5", "fig24", "fig25", "fig26",
            "fig27", "fig28",
        }
        extensions = {
            "tab_fill", "abl_row_weight", "abl_quantiles",
            "abl_partitioner", "abl_threads", "abl_buffer", "abl_trees",
            "tab2_sim", "corr_study", "ord_study", "abl_topology", "abl_seed",
            "model_validation", "eff_study",
        }
        assert set(EXPERIMENTS) == paper_artifacts | extensions

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_run_experiment_dispatches(self):
        result = run_experiment("tab2")
        assert result.experiment == "tab2"


class TestCheapExperiments:
    def test_tab2(self):
        result = tab2.run()
        assert len(result.rows) == 9

    def test_tab4(self):
        result = tab4.run(section="small")
        assert len(result.rows) == 20

    def test_tab5(self):
        result = tab5.run()
        components = {row["component"] for row in result.rows}
        assert {"PEs", "Routers", "SRAMs", "I/O", "Total"} <= components

    def test_fig01(self):
        result = fig01.run(matrices=SMALL)
        assert all(row["pct_of_peak"] < 1.0 for row in result.rows)

    def test_fig03(self):
        result = fig03.run(matrices=SMALL)
        for row in result.rows:
            assert row["sptrsv"] > 0

    def test_tab1(self):
        result = tab1.run(matrices=SMALL)
        for row in result.rows:
            assert row["spmv"] > row["sptrsv_permuted"]

    def test_fig07(self):
        result = fig07.run(matrices=SMALL)
        assert all(row["speedup"] > 1.0 for row in result.rows)


class TestSimulatedExperiments:
    def test_fig20_ordering(self):
        result = fig20.run(matrices=SMALL, config=TINY_CONFIG)
        for row in result.rows:
            assert row["azul_speedup"] > row["dalorex_speedup"]

    def test_fig11_azul_wins(self):
        result = fig11.run(matrices=SMALL, config=TINY_CONFIG)
        for row in result.rows:
            assert row["azul_norm"] <= row["round_robin_norm"]

    def test_fig21_fractions(self):
        result = fig21.run(matrices=SMALL, config=TINY_CONFIG)
        for row in result.rows:
            total = sum(
                row[k] for k in ("fmac", "add", "mul", "send", "stall")
            )
            assert abs(total - 1.0) < 1e-9

    def test_fig22_fractions(self):
        result = fig22.run(matrices=SMALL, config=TINY_CONFIG)
        for row in result.rows:
            assert abs(
                row["spmv"] + row["sptrsv"] + row["vector"] - 1.0
            ) < 1e-9

    def test_fig27_multithreading(self):
        result = fig27.run(matrices=SMALL[:1], config=TINY_CONFIG)
        assert result.extras["multithreading_gain"] >= 1.0

    def test_fig17_runs(self):
        result = fig17.run(matrix="tmt_sym", config=TINY_CONFIG,
                           n_buckets=5)
        assert len(result.rows) == 5
        assert result.extras["speedup"] > 0

    def test_tab2_sim_band(self):
        from repro.experiments import tab2_sim

        result = tab2_sim.run(matrix="tmt_sym", config=TINY_CONFIG)
        assert len(result.rows) == 9
        # Every solver must land within one order of magnitude.
        assert result.extras["max_gflops"] < 10 * result.extras["min_gflops"]

    def test_abl_trees_tiny(self):
        from repro.experiments import abl_trees

        result = abl_trees.run(matrices=["tmt_sym"], config=TINY_CONFIG)
        row = result.rows[0]
        assert row["unicast_links"] >= row["tree_links"]
        assert row["unicast_cycles"] >= row["tree_cycles"]


class TestCsvExport:
    def test_to_csv_roundtrip(self, tmp_path):
        import csv

        result = tab2.run()
        path = tmp_path / "tab2.csv"
        result.to_csv(path)
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result.rows)
        assert rows[0]["algorithm"] == result.rows[0]["algorithm"]

    def test_runner_csv_dir(self, tmp_path, capsys):
        from repro.experiments.runner import main

        assert main(["tab2", "--csv-dir", str(tmp_path)]) == 0
        assert (tmp_path / "tab2.csv").exists()

"""Property-based tests (hypothesis) for core data structures and
invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.comm import TorusGeometry, build_multicast_tree, route_path
from repro.core.quantiles import depth_quantile_weights
from repro.graph import greedy_coloring, inverse_permutation, symmetric_permute
from repro.graph.coloring import validate_coloring
from repro.hypergraph import Hypergraph, connectivity_cut, partition
from repro.hypergraph import PartitionerOptions
from repro.perf import gmean
from repro.sparse import COOMatrix, coo_to_csc, coo_to_csr, csr_to_csc
from repro.sparse.ops import sptrsv_lower


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def coo_matrices(draw, max_dim=12, max_nnz=40):
    """Random COO matrices (possibly with duplicate coordinates)."""
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(st.lists(st.integers(0, n_rows - 1),
                         min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, n_cols - 1),
                         min_size=nnz, max_size=nnz))
    data = draw(st.lists(
        st.floats(-10, 10, allow_nan=False, allow_infinity=False),
        min_size=nnz, max_size=nnz,
    ))
    return COOMatrix(rows, cols, data, (n_rows, n_cols))


@st.composite
def spd_like_matrices(draw, max_dim=10):
    """Small symmetric diagonally-dominant matrices (SPD)."""
    n = draw(st.integers(2, max_dim))
    density = draw(st.floats(0.1, 0.6))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    values = rng.standard_normal((n, n)) * mask
    sym = (values + values.T) / 2
    np.fill_diagonal(sym, np.abs(sym).sum(axis=1) + 1.0)
    return coo_to_csr(COOMatrix.from_dense(sym))


# ----------------------------------------------------------------------
# Sparse formats
# ----------------------------------------------------------------------
class TestSparseProperties:
    @given(coo_matrices())
    @settings(max_examples=50, deadline=None)
    def test_csr_roundtrip_preserves_dense(self, coo):
        assert np.allclose(coo_to_csr(coo).to_dense(), coo.to_dense())

    @given(coo_matrices())
    @settings(max_examples=50, deadline=None)
    def test_csc_equals_csr(self, coo):
        assert np.allclose(
            coo_to_csc(coo).to_dense(), coo_to_csr(coo).to_dense()
        )

    @given(coo_matrices(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_spmv_matches_dense(self, coo, seed):
        csr = coo_to_csr(coo)
        x = np.random.default_rng(seed).standard_normal(csr.n_cols)
        assert np.allclose(csr.spmv(x), csr.to_dense() @ x)

    @given(coo_matrices())
    @settings(max_examples=50, deadline=None)
    def test_transpose_involution(self, coo):
        csr = coo_to_csr(coo)
        assert csr.transpose().transpose().allclose(csr)

    @given(coo_matrices())
    @settings(max_examples=50, deadline=None)
    def test_csr_csc_spmv_agree(self, coo):
        csr = coo_to_csr(coo)
        csc = csr_to_csc(csr)
        x = np.ones(csr.n_cols)
        assert np.allclose(csr.spmv(x), csc.spmv(x))


class TestTriangularSolveProperties:
    @given(spd_like_matrices(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_sptrsv_inverts_lower_product(self, matrix, seed):
        """For any SPD-like matrix: L @ sptrsv_lower(L, b) == b."""
        lower = matrix.lower_triangle()
        b = np.random.default_rng(seed).standard_normal(lower.n_rows)
        x = sptrsv_lower(lower, b)
        assert np.allclose(lower.to_dense() @ x, b, atol=1e-8)


# ----------------------------------------------------------------------
# Graph preprocessing
# ----------------------------------------------------------------------
class TestGraphProperties:
    @given(spd_like_matrices())
    @settings(max_examples=30, deadline=None)
    def test_coloring_always_valid(self, matrix):
        colors = greedy_coloring(matrix)
        assert validate_coloring(matrix, colors)
        assert colors.min() >= 0

    @given(spd_like_matrices(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_symmetric_permutation_preserves_spectrum_proxy(
        self, matrix, seed
    ):
        """P A P^T has the same multiset of diagonal + row sums."""
        rng = np.random.default_rng(seed)
        perm = rng.permutation(matrix.n_rows)
        permuted = symmetric_permute(matrix, perm)
        assert np.allclose(
            np.sort(permuted.diagonal()), np.sort(matrix.diagonal())
        )
        assert permuted.nnz == matrix.nnz

    @given(st.integers(2, 50), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_inverse_permutation_property(self, n, seed):
        perm = np.random.default_rng(seed).permutation(n)
        inv = inverse_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(n))


# ----------------------------------------------------------------------
# Communication
# ----------------------------------------------------------------------
class TestCommProperties:
    @given(st.integers(2, 8), st.integers(2, 8),
           st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=80, deadline=None)
    def test_route_is_minimal(self, rows, cols, a, b):
        torus = TorusGeometry(rows, cols)
        src = a % torus.n_tiles
        dst = b % torus.n_tiles
        path = route_path(torus, src, dst)
        assert len(path) - 1 == torus.hop_distance(src, dst)

    @given(st.integers(3, 8), st.integers(3, 8),
           st.lists(st.integers(0, 63), min_size=1, max_size=10),
           st.integers(0, 63))
    @settings(max_examples=50, deadline=None)
    def test_multicast_tree_is_a_tree(self, rows, cols, dests, root):
        """Tree property: edge count == node count - 1, all dests reached."""
        torus = TorusGeometry(rows, cols)
        root = root % torus.n_tiles
        dests = sorted({d % torus.n_tiles for d in dests} - {root})
        tree = build_multicast_tree(torus, root, dests)
        nodes = {root}
        for parent, child in tree.edges:
            nodes.add(parent)
            nodes.add(child)
        if dests:
            assert len(tree.edges) == len(nodes) - 1
            assert set(dests) <= nodes
        else:
            assert not tree.edges


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
class TestPartitionProperties:
    @given(st.integers(8, 30), st.integers(1, 8),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_partition_assignment_in_range(self, n, parts, seed):
        rng = np.random.default_rng(seed)
        edges = [
            [int(rng.integers(n)), int(rng.integers(n))] for _ in range(2 * n)
        ]
        edges = [e for e in edges if e[0] != e[1]]
        hg = Hypergraph(n, edges)
        assignment = partition(
            hg, parts, PartitionerOptions.speed(seed=seed % 1000)
        )
        assert len(assignment) == n
        assert assignment.min() >= 0
        assert assignment.max() < parts

    @given(st.integers(10, 25), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_connectivity_cut_bounds(self, n, seed):
        """0 <= cut(assignment) <= sum((|e|-1) * w_e)."""
        rng = np.random.default_rng(seed)
        edges = [
            list(rng.integers(0, n, rng.integers(2, 5))) for _ in range(n)
        ]
        hg = Hypergraph(n, edges)
        assignment = rng.integers(0, 4, n)
        cut = connectivity_cut(hg, assignment)
        upper = sum(
            (len(np.unique(hg.edge_pins(e))) - 1) * hg.edge_weights[e]
            for e in range(hg.n_edges)
        )
        assert 0 <= cut <= upper + 1e-9


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetricProperties:
    @given(st.lists(st.floats(0.1, 100), min_size=1, max_size=20),
           st.floats(0.1, 10))
    @settings(max_examples=50, deadline=None)
    def test_gmean_scaling(self, values, c):
        assert np.isclose(gmean([c * v for v in values]), c * gmean(values))

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200),
           st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_quantile_weights_are_one_hot_and_balanced(self, depths, q):
        weights = depth_quantile_weights(np.array(depths), q=q)
        assert np.allclose(weights.sum(axis=1), 1.0)
        counts = weights.sum(axis=0)
        assert counts.max() - counts.min() <= np.ceil(len(depths) / q)


# ----------------------------------------------------------------------
# Simulator end-to-end invariants
# ----------------------------------------------------------------------
class TestSimulatorProperties:
    @given(spd_like_matrices(max_dim=8), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_placements_never_change_spmv(self, matrix, seed):
        """For ANY placement of ANY matrix, the simulated SpMV equals
        the reference — the placement only affects timing."""
        from repro.comm import TorusGeometry
        from repro.config import AzulConfig
        from repro.dataflow import build_spmv_program
        from repro.sim import AZUL_PE, KernelSimulator

        rng = np.random.default_rng(seed)
        n_tiles = 4
        torus = TorusGeometry(2, 2)
        config = AzulConfig(mesh_rows=2, mesh_cols=2)
        a_tile = rng.integers(0, n_tiles, matrix.nnz)
        vec_tile = rng.integers(0, n_tiles, matrix.n_rows)
        program = build_spmv_program(matrix, a_tile, vec_tile, torus)
        x = rng.standard_normal(matrix.n_rows)
        result = KernelSimulator(program, torus, config, AZUL_PE).run(x=x)
        assert np.allclose(result.output, matrix.spmv(x), atol=1e-10)

    @given(spd_like_matrices(max_dim=8), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_placements_never_change_sptrsv(self, matrix, seed):
        from repro.comm import TorusGeometry
        from repro.config import AzulConfig
        from repro.core.placement import Placement, pin_diagonals
        from repro.dataflow import build_sptrsv_program
        from repro.sim import AZUL_PE, KernelSimulator

        rng = np.random.default_rng(seed)
        lower = matrix.lower_triangle()
        torus = TorusGeometry(2, 2)
        config = AzulConfig(mesh_rows=2, mesh_cols=2)
        placement = pin_diagonals(
            Placement(
                n_tiles=4,
                a_tile=rng.integers(0, 4, matrix.nnz),
                l_tile=rng.integers(0, 4, lower.nnz),
                vec_tile=rng.integers(0, 4, matrix.n_rows),
            ),
            lower,
        )
        program = build_sptrsv_program(
            lower, placement.l_tile, placement.vec_tile, torus
        )
        b = rng.standard_normal(matrix.n_rows)
        result = KernelSimulator(program, torus, config, AZUL_PE).run(b=b)
        assert np.allclose(result.output, sptrsv_lower(lower, b),
                           atol=1e-8)

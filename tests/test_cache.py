"""Unit tests for the resilient artifact cache (:mod:`repro.cache`).

Covers the guarantees the experiment harness relies on: content
addressing, atomic publication, corruption quarantine (never crash),
LRU eviction under a byte budget, observability counters, environment
overrides, and cross-process reuse of the disk tier.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cache import (
    MISS,
    NPZ,
    PICKLE,
    ArtifactCache,
    CacheStats,
    canonical_encode,
    content_checksum,
    stable_digest,
)


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache", persist_stats=False)


def _payload_files(cache):
    """All payload files on disk (no meta/tmp/stats)."""
    return sorted(
        p for p in cache.root.rglob("*")
        if p.is_file()
        and not p.name.endswith(".meta.json")
        and not p.name.startswith(".tmp-")
        and p.name != "stats.json"
        and "quarantine" not in p.parts
    )


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
class TestKeys:
    def test_digest_is_stable_across_calls(self):
        assert stable_digest("a", 1, 2.5) == stable_digest("a", 1, 2.5)

    def test_digest_distinguishes_types(self):
        assert stable_digest(1) != stable_digest("1")
        assert stable_digest(1) != stable_digest(1.0)
        assert stable_digest(["a", "b"]) != stable_digest(["ab"])

    def test_digest_handles_containers_and_arrays(self):
        first = stable_digest({"b": 2, "a": np.arange(4)})
        second = stable_digest({"a": np.arange(4), "b": 2})
        assert first == second  # dict order canonicalised

    def test_unstable_types_are_refused(self):
        with pytest.raises(TypeError):
            stable_digest(object())

    def test_canonical_encode_none(self):
        assert canonical_encode(None) != canonical_encode("None")

    def test_content_checksum_prefix(self):
        assert content_checksum(b"abc").startswith("sha256:")


# ----------------------------------------------------------------------
# Roundtrip
# ----------------------------------------------------------------------
class TestRoundtrip:
    def test_npz_roundtrip(self, cache):
        arrays = {"x": np.arange(10), "y": np.eye(3)}
        key = cache.key("roundtrip", 1)
        cache.put("ns", key, arrays, NPZ)
        # Drop the memory tier to force a disk read.
        cache._memory.clear()
        loaded = cache.get("ns", key, NPZ)
        assert loaded is not MISS
        np.testing.assert_array_equal(loaded["x"], arrays["x"])
        np.testing.assert_array_equal(loaded["y"], arrays["y"])

    def test_pickle_roundtrip(self, cache):
        value = {"nested": [1, 2, {"k": np.float64(3.5)}]}
        key = cache.key("pkl")
        cache.put("ns", key, value, PICKLE)
        cache._memory.clear()
        assert cache.get("ns", key, PICKLE) == value

    def test_memory_tier_preserves_identity(self, cache):
        value = {"payload": np.ones(4)}
        key = cache.key("ident")
        cache.put("ns", key, value, PICKLE)
        assert cache.get("ns", key, PICKLE) is value

    def test_miss_on_absent_key(self, cache):
        assert cache.get("ns", "nope", PICKLE) is MISS

    def test_get_or_compute_runs_once(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return {"v": 42}

        key = cache.key("goc")
        first = cache.get_or_compute("ns", key, compute, PICKLE)
        second = cache.get_or_compute("ns", key, compute, PICKLE)
        assert first == second == {"v": 42}
        assert len(calls) == 1

    def test_disabled_cache_is_transparent(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c", enabled=False,
                              persist_stats=False)
        key = cache.key("off")
        cache.put("ns", key, {"v": 1}, PICKLE)
        assert cache.get("ns", key, PICKLE) is MISS
        assert not (tmp_path / "c").exists()


# ----------------------------------------------------------------------
# Corruption -> quarantine -> recompute (never crash)
# ----------------------------------------------------------------------
class TestCorruption:
    @pytest.mark.parametrize("mode", ["truncate", "garbage", "empty"])
    def test_corrupt_payload_is_quarantined_and_recomputed(
            self, cache, mode):
        key = cache.key("victim", mode)
        cache.put("ns", key, {"x": np.arange(8)}, NPZ)
        cache._memory.clear()
        (payload,) = _payload_files(cache)
        raw = payload.read_bytes()
        if mode == "truncate":
            payload.write_bytes(raw[: len(raw) // 2])
        elif mode == "garbage":
            payload.write_bytes(b"this is not an npz archive")
        else:
            payload.write_bytes(b"")

        value = cache.get_or_compute(
            "ns", key, lambda: {"x": np.arange(8)}, NPZ
        )
        np.testing.assert_array_equal(value["x"], np.arange(8))
        assert cache.stats.corruptions == 1
        assert cache.stats.quarantined == 1
        quarantined = list(cache.quarantine_dir.iterdir())
        assert quarantined, "corrupt entry was not moved to quarantine"
        # The recomputed entry must be healthy again.
        cache._memory.clear()
        assert cache.get("ns", key, NPZ) is not MISS

    def test_bad_meta_is_corruption(self, cache):
        key = cache.key("meta")
        cache.put("ns", key, {"v": 1}, PICKLE)
        cache._memory.clear()
        (payload,) = _payload_files(cache)
        meta = payload.with_name(payload.name + ".meta.json")
        meta.write_text("{ not json", encoding="utf-8")
        assert cache.get("ns", key, PICKLE) is MISS
        assert cache.stats.corruptions == 1

    def test_missing_meta_is_corruption(self, cache):
        key = cache.key("nometa")
        cache.put("ns", key, {"v": 1}, PICKLE)
        cache._memory.clear()
        (payload,) = _payload_files(cache)
        payload.with_name(payload.name + ".meta.json").unlink()
        assert cache.get("ns", key, PICKLE) is MISS
        assert cache.stats.corruptions == 1

    def test_checksum_mismatch_detected(self, cache):
        key = cache.key("bitrot")
        cache.put("ns", key, {"v": list(range(100))}, PICKLE)
        cache._memory.clear()
        (payload,) = _payload_files(cache)
        raw = bytearray(payload.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # single-byte flip, size unchanged
        payload.write_bytes(bytes(raw))
        assert cache.get("ns", key, PICKLE) is MISS
        assert cache.stats.corruptions == 1

    def test_verify_reports_and_fixes(self, cache):
        good = cache.key("good")
        bad = cache.key("bad")
        cache.put("ns", good, {"v": 1}, PICKLE)
        cache.put("ns", bad, {"v": 2}, PICKLE)
        for payload in _payload_files(cache):
            if bad in payload.name:
                payload.write_bytes(b"junk")
        statuses = {r.key: r.status for r in cache.verify(fix=False)}
        assert statuses[good] == "ok"
        assert statuses[bad] == "corrupt"
        cache.verify(fix=True)
        remaining = {p.stem.split(".")[0] for p in _payload_files(cache)}
        assert bad not in remaining
        assert list(cache.quarantine_dir.iterdir())


# ----------------------------------------------------------------------
# Atomicity
# ----------------------------------------------------------------------
class TestAtomicity:
    def test_leftover_tmp_file_is_harmless_and_swept(self, cache):
        key = cache.key("atomic")
        cache.put("ns", key, {"v": 1}, PICKLE)
        stale = cache.root / "ns" / ".tmp-interrupted"
        stale.write_bytes(b"half-written")
        os.utime(stale, (0, 0))  # pretend it is ancient
        cache._memory.clear()
        assert cache.get("ns", key, PICKLE) == {"v": 1}
        assert cache.sweep_tmp(max_age_seconds=60) >= 1
        assert not stale.exists()

    def test_clear_removes_everything(self, cache):
        for i in range(3):
            cache.put("ns", cache.key("clear", i), {"v": i}, PICKLE)
        removed, freed = cache.clear()
        assert removed >= 3
        assert freed > 0
        assert cache.disk_bytes() == 0
        assert not cache._memory


# ----------------------------------------------------------------------
# Eviction
# ----------------------------------------------------------------------
class TestEviction:
    def test_lru_eviction_respects_budget_and_recency(self, tmp_path):
        payload = {"v": "x" * 2000}
        probe = ArtifactCache(tmp_path / "probe", persist_stats=False)
        probe.put("ns", "probe", payload, PICKLE)
        entry_bytes = probe.disk_bytes()
        # Budget for ~3 entries.
        cache = ArtifactCache(tmp_path / "cache",
                              max_bytes=int(entry_bytes * 3.5),
                              persist_stats=False)
        keys = [cache.key("evict", i) for i in range(4)]
        for i, key in enumerate(keys[:3]):
            cache.put("ns", key, payload, PICKLE)
            os.utime(
                cache._payload_path("ns", key, PICKLE),
                (1_000_000 + i, 1_000_000 + i),
            )
        # Refresh entry 0 so entry 1 becomes the LRU victim.
        cache._memory.clear()
        assert cache.get("ns", keys[0], PICKLE) is not MISS
        cache.put("ns", keys[3], payload, PICKLE)
        cache._memory.clear()
        assert cache.get("ns", keys[1], PICKLE) is MISS   # evicted
        assert cache.get("ns", keys[0], PICKLE) is not MISS
        assert cache.get("ns", keys[3], PICKLE) is not MISS
        assert cache.stats.evictions >= 1
        assert cache.disk_bytes() <= cache.max_bytes


# ----------------------------------------------------------------------
# Stats & observability
# ----------------------------------------------------------------------
class TestStats:
    def test_counters(self, cache):
        key = cache.key("stats")
        assert cache.get("ns", key, PICKLE) is MISS
        cache.put("ns", key, {"v": 1}, PICKLE)
        cache.get("ns", key, PICKLE)            # memory hit
        cache._memory.clear()
        cache.get("ns", key, PICKLE)            # disk hit
        stats = cache.stats
        assert stats.misses == 1
        assert stats.writes == 1
        assert stats.hits_memory == 1
        assert stats.hits_disk == 1
        assert stats.hits == 2
        assert stats.lookups == 3
        assert 0.0 < stats.hit_rate() < 1.0

    def test_merged_and_dict_roundtrip(self):
        a = CacheStats(hits_memory=1, misses=2, writes=3)
        b = CacheStats(hits_disk=4, evictions=5)
        merged = a.merged(b)
        assert merged.hits == 5 and merged.misses == 2
        assert CacheStats.from_dict(merged.as_dict()) == merged

    def test_stats_persist_to_disk(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c", persist_stats=True)
        cache.put("ns", cache.key("p"), {"v": 1}, PICKLE)
        cache.flush_stats()
        persisted = cache.persisted_stats()
        assert persisted.writes == 1
        on_disk = json.loads(
            (cache.root / "stats.json").read_text(encoding="utf-8")
        )
        assert on_disk["writes"] == 1

    def test_inventory_shape(self, cache):
        cache.put("alpha", cache.key(1), {"v": 1}, PICKLE)
        cache.put("beta", cache.key(2), {"v": 2}, PICKLE)
        inventory = cache.inventory()
        assert set(inventory["namespaces"]) == {"alpha", "beta"}
        assert inventory["total_bytes"] > 0
        assert inventory["enabled"] is True


# ----------------------------------------------------------------------
# Environment knobs
# ----------------------------------------------------------------------
class TestEnvironment:
    def test_cache_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        cache = ArtifactCache.from_env(persist_stats=False)
        assert cache.root == tmp_path / "override"

    def test_max_bytes_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        assert ArtifactCache.from_env(persist_stats=False).max_bytes == 12345

    def test_disable_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        assert ArtifactCache.from_env(persist_stats=False).enabled is False

    def test_default_registry_tracks_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        first = ArtifactCache.default()
        assert ArtifactCache.default() is first
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b"))
        second = ArtifactCache.default()
        assert second is not first
        assert second.root == tmp_path / "b"


# ----------------------------------------------------------------------
# Cross-process reuse
# ----------------------------------------------------------------------
class TestCrossProcess:
    def test_two_processes_share_the_disk_tier(self, tmp_path):
        script = r"""
import os, sys
from repro.cache import ArtifactCache, PICKLE, MISS

cache = ArtifactCache.from_env()
key = cache.key("xproc", 7)
value = cache.get("xproc", key, PICKLE)
if value is MISS:
    cache.put("xproc", key, {"answer": 42}, PICKLE)
    cache.flush_stats()
    print("WROTE")
else:
    assert value == {"answer": 42}, value
    print("READ")
"""
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "shared")
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        outs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outs.append(proc.stdout.strip())
        assert outs == ["WROTE", "READ"]

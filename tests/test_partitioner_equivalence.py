"""Partitioner invariants and refine-strategy equivalence.

The vectorized CSR strategy (``refine_vec``) must be *bit-identical* to
the reference heap FM on dyadic-weight hypergraphs — both share the
:func:`repro.hypergraph.refine._fm_pass` selection loop and differ only
in bookkeeping (see ``refine.py``'s module docstring for the exactness
argument).  On arbitrary float weights gain sums may round differently,
so there the contract weakens to cut-quality parity (gmean within 2%).

Also covered: FM never increases the connectivity cut, per-constraint
caps hold after every refine when the input satisfies them, same-seed
determinism across presets, the strategy registry / env escape hatch,
and ``jobs=N`` bit-identity with the serial path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hypergraph import Hypergraph, PartitionerOptions, partition
from repro.hypergraph.metrics import connectivity_cut, cut_weight
from repro.hypergraph.refine import (
    REFERENCE_ENV,
    STRATEGIES,
    default_refine_name,
    fm_refine,
    resolve_refine,
)
from repro.hypergraph.refine_vec import VectorizedRefine


def random_hypergraph(rng, n=None, n_edges=None, weight_pool=(1.0, 2.0),
                      n_constraints=2, min_pins=1, max_pins=8):
    """A random hypergraph with weights drawn from ``weight_pool``."""
    n = int(rng.integers(12, 120)) if n is None else n
    n_edges = int(rng.integers(8, 220)) if n_edges is None else n_edges
    edges = [
        rng.integers(0, n, size=int(rng.integers(min_pins, max_pins + 1)))
        for _ in range(n_edges)
    ]
    edge_weights = rng.choice(weight_pool, size=n_edges)
    vertex_weights = rng.integers(1, 4, size=(n, n_constraints)).astype(float)
    return Hypergraph(n, edges, edge_weights, vertex_weights)


def loose_caps(hgraph, fraction=0.5, epsilon=0.10):
    totals = hgraph.total_weights()
    slack = hgraph.vertex_weights.max(axis=0)
    caps = np.empty((2, hgraph.n_constraints))
    caps[0] = totals * fraction * (1.0 + epsilon) + slack
    caps[1] = totals * (1.0 - fraction) * (1.0 + epsilon) + slack
    return caps


def random_side(hgraph, rng):
    return (rng.random(hgraph.n_vertices) < 0.5).astype(np.int8)


class TestRegistry:
    def test_both_strategies_registered(self):
        assert {"reference", "vectorized"} <= set(STRATEGIES)

    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv(REFERENCE_ENV, raising=False)
        assert default_refine_name() == "vectorized"
        assert resolve_refine(None) is VectorizedRefine

    def test_env_selects_reference(self, monkeypatch):
        monkeypatch.setenv(REFERENCE_ENV, "1")
        assert default_refine_name() == "reference"
        monkeypatch.setenv(REFERENCE_ENV, "0")
        assert default_refine_name() == "vectorized"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown refine strategy"):
            resolve_refine("does-not-exist")

    def test_options_select_strategy_end_to_end(self):
        rng = np.random.default_rng(5)
        hg = random_hypergraph(rng, n=80, n_edges=160)
        ref = partition(hg, 8, PartitionerOptions(seed=3, refine="reference"))
        vec = partition(hg, 8, PartitionerOptions(seed=3, refine="vectorized"))
        assert np.array_equal(ref, vec)


class TestFMInvariants:
    @pytest.mark.parametrize("refine", ["reference", "vectorized"])
    def test_fm_never_increases_cut(self, refine):
        rng = np.random.default_rng(11)
        for _ in range(12):
            hg = random_hypergraph(rng)
            side = random_side(hg, rng)
            before = connectivity_cut(hg, side.astype(np.int64))
            refined = fm_refine(
                hg, side.copy(), loose_caps(hg), passes=3, refine=refine
            )
            after = connectivity_cut(hg, refined.astype(np.int64))
            assert after <= before + 1e-9

    @pytest.mark.parametrize("refine", ["reference", "vectorized"])
    def test_caps_respected_after_every_refine(self, refine):
        rng = np.random.default_rng(23)
        for _ in range(12):
            hg = random_hypergraph(rng)
            side = random_side(hg, rng)
            # Caps that the *input* side satisfies: FM must keep them.
            weights = np.stack([
                hg.vertex_weights[side == s].sum(axis=0) for s in (0, 1)
            ])
            caps = np.maximum(loose_caps(hg), weights)
            for _ in range(3):  # every refine call, not just the first
                side = fm_refine(hg, side, caps, passes=1, refine=refine)
                held = np.stack([
                    hg.vertex_weights[side == s].sum(axis=0) for s in (0, 1)
                ])
                assert (held <= caps + 1e-9).all()


class TestStrategyParity:
    def test_refine_bit_identical_on_dyadic_weights(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            hg = random_hypergraph(rng, weight_pool=(1.0, 2.0, 4.0))
            side = random_side(hg, rng)
            ref = fm_refine(hg, side.copy(), loose_caps(hg), passes=3,
                            refine="reference")
            vec = fm_refine(hg, side.copy(), loose_caps(hg), passes=3,
                            refine="vectorized")
            assert np.array_equal(ref, vec)

    def test_partition_bit_identical_on_dyadic_weights(self):
        rng = np.random.default_rng(17)
        for n_parts in (2, 5, 16):
            hg = random_hypergraph(rng, n=150, n_edges=400)
            ref = partition(
                hg, n_parts, PartitionerOptions(seed=1, refine="reference")
            )
            vec = partition(
                hg, n_parts, PartitionerOptions(seed=1, refine="vectorized")
            )
            assert np.array_equal(ref, vec)

    def test_cut_quality_parity_on_float_weights(self):
        # Non-dyadic weights: gain sums may round differently between
        # bookkeeping schemes, so exact equality is not guaranteed —
        # but cut quality must agree (gmean within 2%).
        rng = np.random.default_rng(29)
        ratios = []
        for _ in range(10):
            n_edges = int(rng.integers(40, 200))
            hg = random_hypergraph(rng, n_edges=n_edges)
            hg.edge_weights = rng.random(hg.n_edges) + 0.25
            ref = partition(
                hg, 4, PartitionerOptions(seed=2, refine="reference")
            )
            vec = partition(
                hg, 4, PartitionerOptions(seed=2, refine="vectorized")
            )
            cut_ref = connectivity_cut(hg, ref) + 1.0
            cut_vec = connectivity_cut(hg, vec) + 1.0
            ratios.append(cut_vec / cut_ref)
        gmean = float(np.exp(np.mean(np.log(ratios))))
        assert 0.98 <= gmean <= 1.02


class TestDeterminism:
    @pytest.mark.parametrize("preset", ["speed", "default", "quality"])
    def test_same_seed_same_assignment(self, preset):
        rng = np.random.default_rng(31)
        hg = random_hypergraph(rng, n=140, n_edges=350)
        make = {
            "speed": PartitionerOptions.speed,
            "quality": PartitionerOptions.quality,
            "default": PartitionerOptions,
        }[preset]
        first = partition(hg, 8, make(seed=9))
        second = partition(hg, 8, make(seed=9))
        assert np.array_equal(first, second)

    def test_different_seeds_differ(self):
        rng = np.random.default_rng(37)
        hg = random_hypergraph(rng, n=200, n_edges=500)
        a = partition(hg, 8, PartitionerOptions(seed=0))
        b = partition(hg, 8, PartitionerOptions(seed=1))
        assert not np.array_equal(a, b)

    def test_jobs_bit_identical_to_serial(self):
        rng = np.random.default_rng(41)
        hg = random_hypergraph(rng, n=300, n_edges=700)
        options = PartitionerOptions(seed=4)
        serial = partition(hg, 8, options)
        pooled = partition(hg, 8, options, jobs=2)
        assert np.array_equal(serial, pooled)

    def test_presets_cover_edge_size_knobs(self):
        speed = PartitionerOptions.speed()
        default = PartitionerOptions()
        quality = PartitionerOptions.quality()
        assert (speed.matching_edge_size_limit
                < default.matching_edge_size_limit
                < quality.matching_edge_size_limit)
        assert (speed.growth_edge_size_limit
                < default.growth_edge_size_limit
                < quality.growth_edge_size_limit)


class TestCutMetricsAgree:
    def test_cut_weight_lower_bounds_connectivity(self):
        rng = np.random.default_rng(43)
        hg = random_hypergraph(rng)
        assignment = partition(hg, 4, PartitionerOptions(seed=0))
        assert cut_weight(hg, assignment) <= connectivity_cut(hg, assignment)

"""Tests for coloring, permutation, level scheduling, and parallelism."""

import numpy as np
import pytest

from repro.graph import (
    color_and_permute,
    color_counts,
    color_permutation,
    greedy_coloring,
    inverse_permutation,
    level_schedule,
    level_sets,
    parallelism_report,
    permute_vector,
    spmv_parallelism,
    sptrsv_parallelism,
    symmetric_permute,
)
from repro.graph.coloring import validate_coloring
from repro.graph.levels import critical_path_ops
from repro.sparse import generators as gen


class TestColoring:
    @pytest.mark.parametrize(
        "strategy", ["largest_first", "natural", "smallest_last"]
    )
    def test_valid_coloring(self, grid_matrix, strategy):
        colors = greedy_coloring(grid_matrix, strategy=strategy)
        assert validate_coloring(grid_matrix, colors)

    def test_grid_is_two_colorable(self):
        """A bipartite grid graph needs exactly two colors (Fig. 6)."""
        matrix = gen.grid_laplacian_2d(6, 6)
        colors = greedy_coloring(matrix, strategy="largest_first")
        assert colors.max() + 1 == 2

    def test_tridiagonal_two_colors(self):
        matrix = gen.tridiagonal_spd(16)
        colors = greedy_coloring(matrix)
        assert colors.max() + 1 == 2
        assert validate_coloring(matrix, colors)

    def test_color_counts(self, grid_matrix):
        colors = greedy_coloring(grid_matrix)
        counts = color_counts(colors)
        assert counts.sum() == grid_matrix.n_rows

    def test_color_permutation_groups_colors(self, grid_matrix):
        colors = greedy_coloring(grid_matrix)
        perm = color_permutation(colors)
        reordered = colors[perm]
        assert np.all(np.diff(reordered) >= 0)  # colors non-decreasing

    def test_unknown_strategy(self, grid_matrix):
        with pytest.raises(ValueError):
            greedy_coloring(grid_matrix, strategy="rainbow")


class TestPermutation:
    def test_inverse(self, rng):
        perm = rng.permutation(20)
        inv = inverse_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(20))
        assert np.array_equal(inv[perm], np.arange(20))

    def test_symmetric_permute_preserves_solution(self, small_spd, rng):
        """(PAP^T)(Px) = Pb must hold for any permutation."""
        x = rng.standard_normal(small_spd.n_rows)
        b = small_spd.spmv(x)
        perm = rng.permutation(small_spd.n_rows)
        permuted = symmetric_permute(small_spd, perm)
        assert np.allclose(
            permuted.spmv(permute_vector(x, perm)), permute_vector(b, perm)
        )

    def test_symmetric_permute_preserves_symmetry(self, small_spd, rng):
        from repro.sparse import is_symmetric

        perm = rng.permutation(small_spd.n_rows)
        assert is_symmetric(symmetric_permute(small_spd, perm))

    def test_identity_permutation(self, small_spd):
        perm = np.arange(small_spd.n_rows)
        assert symmetric_permute(small_spd, perm).allclose(small_spd)

    def test_color_and_permute_end_to_end(self, mesh_matrix, rng):
        x = rng.standard_normal(mesh_matrix.n_rows)
        b = mesh_matrix.spmv(x)
        permuted, permuted_b, perm = color_and_permute(mesh_matrix, b)
        assert np.allclose(
            permuted.spmv(permute_vector(x, perm)), permuted_b
        )


class TestLevels:
    def test_tridiagonal_is_sequential(self):
        """An unpermuted tridiagonal lower triangle has n levels (Fig. 6)."""
        matrix = gen.tridiagonal_spd(12)
        lower = matrix.lower_triangle()
        schedule = level_schedule(lower)
        assert schedule.n_levels == 12

    def test_diagonal_matrix_is_one_level(self):
        import numpy as np

        from repro.sparse import COOMatrix, coo_to_csr

        n = 8
        diag = coo_to_csr(
            COOMatrix(np.arange(n), np.arange(n), np.ones(n), (n, n))
        )
        assert level_schedule(diag).n_levels == 1

    def test_levels_respect_dependences(self, mesh_matrix):
        lower = mesh_matrix.lower_triangle()
        schedule = level_schedule(lower)
        for i in range(lower.n_rows):
            cols, _ = lower.row(i)
            for j in cols:
                if j < i:
                    assert schedule.levels[j] < schedule.levels[i]

    def test_level_sets_partition_rows(self, mesh_matrix):
        lower = mesh_matrix.lower_triangle()
        sets = level_sets(lower)
        combined = np.sort(np.concatenate(sets))
        assert np.array_equal(combined, np.arange(lower.n_rows))

    def test_coloring_reduces_levels(self):
        """Permutation by color must shrink the level count (Fig. 6/7)."""
        matrix = gen.tridiagonal_spd(64)
        before = level_schedule(matrix.lower_triangle()).n_levels
        permuted, _, _ = color_and_permute(matrix)
        after = level_schedule(permuted.lower_triangle()).n_levels
        assert after < before
        assert after <= 2  # two colors -> at most two levels

    def test_critical_path_weighted(self):
        matrix = gen.tridiagonal_spd(10)
        lower = matrix.lower_triangle()
        # Chain of 10 rows: row 0 costs 1 op, rows 1..9 cost 2 ops each.
        assert critical_path_ops(lower) == 1 + 9 * 2


class TestParallelism:
    def test_spmv_exceeds_sptrsv(self, mesh_matrix):
        """Table I: SpMV parallelism dwarfs SpTRSV's."""
        lower = mesh_matrix.lower_triangle()
        assert spmv_parallelism(mesh_matrix) > sptrsv_parallelism(lower)

    def test_permutation_improves_sptrsv(self):
        matrix = gen.grid_laplacian_2d(16, 16)
        report = parallelism_report("grid", matrix)
        assert report.sptrsv_permuted > report.sptrsv_original
        assert report.coloring_gain > 1.0

    def test_report_fields(self, grid_matrix):
        report = parallelism_report("g", grid_matrix)
        assert report.name == "g"
        assert report.spmv > 0
        assert report.sptrsv_original > 0

    def test_empty_matrix(self):
        from repro.sparse import CSRMatrix

        empty = CSRMatrix([0], [], [], (0, 0))
        assert spmv_parallelism(empty) == 0.0
        assert sptrsv_parallelism(empty) == 0.0

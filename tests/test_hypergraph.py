"""Tests for the multilevel hypergraph partitioner."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.hypergraph import (
    Hypergraph,
    PartitionerOptions,
    balance_ratios,
    connectivity_cut,
    cut_weight,
    is_balanced,
    partition,
)
from repro.hypergraph.coarsen import coarsen, contract, match_vertices
from repro.hypergraph.refine import fm_refine


def two_cliques(clique_size=8, bridge_edges=1):
    """Two groups heavily intra-connected, weakly bridged.

    The optimal bisection separates the cliques, cutting only the
    bridges — a canonical partitioning sanity check.
    """
    edges = []
    n = 2 * clique_size
    for base in (0, clique_size):
        members = list(range(base, base + clique_size))
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append([members[i], members[j]])
    for k in range(bridge_edges):
        edges.append([k, clique_size + k])
    return Hypergraph(n, edges)


class TestHypergraph:
    def test_construction(self):
        hg = Hypergraph(4, [[0, 1], [1, 2, 3]])
        assert hg.n_vertices == 4
        assert hg.n_edges == 2
        assert hg.n_pins == 5
        assert hg.n_constraints == 1

    def test_duplicate_pins_removed(self):
        hg = Hypergraph(3, [[0, 0, 1]])
        assert list(hg.edge_pins(0)) == [0, 1]

    def test_out_of_range_pin_rejected(self):
        with pytest.raises(PartitionError):
            Hypergraph(2, [[0, 5]])

    def test_vertex_edges(self):
        hg = Hypergraph(4, [[0, 1], [1, 2], [2, 3]])
        assert list(hg.vertex_edges(1)) == [0, 1]
        assert list(hg.vertex_edges(3)) == [2]

    def test_multi_constraint_weights(self):
        weights = np.array([[1.0, 0.0], [1.0, 2.0], [1.0, 0.0]])
        hg = Hypergraph(3, [[0, 1, 2]], vertex_weights=weights)
        assert hg.n_constraints == 2
        assert np.allclose(hg.total_weights(), [3.0, 2.0])


class TestMetrics:
    def test_uncut_hypergraph(self):
        hg = Hypergraph(4, [[0, 1], [2, 3]])
        assignment = np.array([0, 0, 1, 1])
        assert cut_weight(hg, assignment) == 0.0
        assert connectivity_cut(hg, assignment) == 0.0

    def test_cut_counts_spanned_parts(self):
        hg = Hypergraph(3, [[0, 1, 2]], edge_weights=[2.0])
        spanning_two = np.array([0, 0, 1])
        spanning_three = np.array([0, 1, 2])
        assert cut_weight(hg, spanning_two) == 2.0
        assert connectivity_cut(hg, spanning_two) == 2.0
        # Connectivity (lambda - 1) distinguishes 3-way spanning.
        assert connectivity_cut(hg, spanning_three) == 4.0
        assert cut_weight(hg, spanning_three) == 2.0

    def test_balance_ratios(self):
        hg = Hypergraph(4, [])
        perfect = np.array([0, 0, 1, 1])
        skewed = np.array([0, 0, 0, 1])
        assert np.allclose(balance_ratios(hg, perfect, 2), 1.0)
        assert np.allclose(balance_ratios(hg, skewed, 2), 1.5)
        assert is_balanced(hg, perfect, 2, epsilon=0.05)
        assert not is_balanced(hg, skewed, 2, epsilon=0.05)


class TestCoarsening:
    def test_matching_respects_weight_cap(self):
        hg = Hypergraph(
            4, [[0, 1], [2, 3]],
            vertex_weights=np.array([[10.0], [10.0], [1.0], [1.0]]),
        )
        rng = np.random.default_rng(0)
        mapping = match_vertices(hg, rng, max_vertex_weight=np.array([5.0]))
        # Heavy vertices cannot merge; light ones can.
        assert mapping[0] != mapping[1]
        assert mapping[2] == mapping[3]

    def test_contract_preserves_total_weight(self):
        hg = two_cliques(6)
        rng = np.random.default_rng(1)
        mapping = match_vertices(hg, rng, np.array([100.0]))
        coarse = contract(hg, mapping)
        assert np.allclose(coarse.total_weights(), hg.total_weights())

    def test_coarsen_shrinks(self):
        hg = two_cliques(12)
        levels, mappings = coarsen(hg, np.random.default_rng(2), stop_at=8)
        assert levels[-1].n_vertices < hg.n_vertices
        assert len(levels) == len(mappings) + 1

    def test_contract_drops_internal_edges(self):
        hg = Hypergraph(2, [[0, 1]])
        coarse = contract(hg, np.array([0, 0]))
        assert coarse.n_edges == 0


class TestRefinement:
    def test_fm_recovers_clique_split(self):
        """FM must fix a deliberately-scrambled bisection."""
        hg = two_cliques(8, bridge_edges=1)
        rng = np.random.default_rng(3)
        side = rng.integers(0, 2, hg.n_vertices).astype(np.int8)
        totals = hg.total_weights()
        caps = np.tile(totals * 0.5 * 1.3 + 1, (2, 1))
        before = connectivity_cut(hg, side.astype(np.int64))
        fm_refine(hg, side, caps, passes=6, stall_limit=200)
        after = connectivity_cut(hg, side.astype(np.int64))
        assert after < before
        assert after <= 3.0  # near-optimal: only bridges cut


class TestPartition:
    def test_bisection_separates_cliques(self):
        hg = two_cliques(10, bridge_edges=1)
        assignment = partition(hg, 2, PartitionerOptions(seed=4))
        assert connectivity_cut(hg, assignment) <= 2.0
        assert is_balanced(hg, assignment, 2, epsilon=0.10, slack=1.0)

    def test_four_way_partition(self):
        rng = np.random.default_rng(5)
        # Four clusters of 12, ring-bridged.
        edges = []
        for c in range(4):
            base = 12 * c
            for _ in range(60):
                i, j = rng.integers(0, 12, 2)
                if i != j:
                    edges.append([base + i, base + j])
            edges.append([base, (base + 12) % 48])
        hg = Hypergraph(48, edges)
        assignment = partition(hg, 4, PartitionerOptions(seed=6))
        assert len(np.unique(assignment)) == 4
        assert is_balanced(hg, assignment, 4, epsilon=0.25, slack=2.0)
        # Each cluster should be (mostly) in a single part.
        cut = connectivity_cut(hg, assignment)
        total = hg.edge_weights.sum()
        assert cut < 0.25 * total

    def test_single_part(self):
        hg = two_cliques(4)
        assert np.all(partition(hg, 1) == 0)

    def test_more_parts_than_vertices(self):
        hg = Hypergraph(3, [[0, 1, 2]])
        assignment = partition(hg, 8)
        assert assignment.max() < 8

    def test_invalid_part_count(self):
        with pytest.raises(PartitionError):
            partition(two_cliques(4), 0)

    def test_deterministic_for_seed(self):
        hg = two_cliques(10)
        a = partition(hg, 4, PartitionerOptions(seed=7))
        b = partition(hg, 4, PartitionerOptions(seed=7))
        assert np.array_equal(a, b)

    def test_multi_constraint_balance(self):
        """The time-balancing use case: balance each quantile separately."""
        rng = np.random.default_rng(8)
        n = 64
        # Constraint 0: uniform count. Constraint 1: only the first 16
        # vertices carry weight (e.g. early-level SpTRSV work).
        weights = np.ones((n, 2))
        weights[:, 1] = 0.0
        weights[:16, 1] = 1.0
        edges = [[int(rng.integers(n)), int(rng.integers(n))] for _ in range(150)]
        edges = [e for e in edges if e[0] != e[1]]
        hg = Hypergraph(n, edges, vertex_weights=weights)
        assignment = partition(hg, 4, PartitionerOptions(seed=9))
        ratios = balance_ratios(hg, assignment, 4)
        # Every part must receive a fair share of the scarce constraint.
        per_part = np.zeros(4)
        np.add.at(per_part, assignment, weights[:, 1])
        assert per_part.min() >= 1  # no part starved of early work
        assert ratios[0] < 1.6

    def test_quality_presets(self):
        fast = PartitionerOptions.speed()
        good = PartitionerOptions.quality()
        assert fast.fm_passes < good.fm_passes
        hg = two_cliques(10)
        for options in (fast, good):
            assignment = partition(hg, 2, options)
            assert set(np.unique(assignment)) == {0, 1}


class TestRebalance:
    def _skewed_instance(self, seed=11):
        rng = np.random.default_rng(seed)
        n = 60
        edges = [
            [int(rng.integers(n)), int(rng.integers(n))] for _ in range(120)
        ]
        edges = [e for e in edges if e[0] != e[1]]
        hg = Hypergraph(n, edges)
        # Deliberately skewed: part 0 holds 2/3 of the vertices.
        assignment = np.zeros(n, dtype=np.int64)
        assignment[40:] = rng.integers(1, 4, 20)
        return hg, assignment

    def test_restores_balance(self):
        from repro.hypergraph import rebalance

        hg, assignment = self._skewed_instance()
        assert not is_balanced(hg, assignment, 4, epsilon=0.10, slack=1.0)
        repaired = rebalance(hg, assignment, 4, epsilon=0.10)
        assert is_balanced(hg, repaired, 4, epsilon=0.10, slack=1.0)

    def test_original_untouched(self):
        from repro.hypergraph import rebalance

        hg, assignment = self._skewed_instance()
        snapshot = assignment.copy()
        rebalance(hg, assignment, 4, epsilon=0.10)
        assert np.array_equal(assignment, snapshot)

    def test_cut_growth_is_bounded(self):
        from repro.hypergraph import rebalance

        hg, assignment = self._skewed_instance()
        before = connectivity_cut(hg, assignment)
        repaired = rebalance(hg, assignment, 4, epsilon=0.10)
        after = connectivity_cut(hg, repaired)
        # Greedy min-delta moves: cut grows, but not catastrophically.
        total = float(hg.edge_weights.sum())
        assert after - before < 0.8 * total

    def test_balanced_input_is_noop(self):
        from repro.hypergraph import rebalance

        hg = Hypergraph(8, [[0, 1], [2, 3], [4, 5], [6, 7]])
        assignment = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        repaired = rebalance(hg, assignment, 4, epsilon=0.10)
        assert np.array_equal(repaired, assignment)

    def test_multi_constraint_repair(self):
        from repro.hypergraph import rebalance

        rng = np.random.default_rng(13)
        n = 40
        weights = np.ones((n, 2))
        weights[:10, 1] = 5.0  # heavy second-constraint vertices
        hg = Hypergraph(
            n,
            [[int(rng.integers(n)), int(rng.integers(n))]
             for _ in range(60)],
            vertex_weights=weights,
        )
        # All heavy vertices crammed into part 0.
        assignment = rng.integers(0, 4, n)
        assignment[:10] = 0
        repaired = rebalance(hg, assignment, 4, epsilon=0.25)
        per_part = np.zeros(4)
        np.add.at(per_part, repaired, weights[:, 1])
        cap = weights[:, 1].sum() / 4 * 1.25 + 5.0
        assert per_part.max() <= cap + 1e-9

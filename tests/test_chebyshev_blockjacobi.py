"""Tests for Chebyshev iteration and the block-Jacobi preconditioner."""

import numpy as np
import pytest

from repro.errors import PreconditionerError, ReproError
from repro.precond import BlockJacobiPreconditioner, JacobiPreconditioner
from repro.solvers import SolveOptions, chebyshev, gershgorin_bounds, pcg
from repro.sparse import generators as gen


class TestGershgorinBounds:
    def test_bounds_bracket_spectrum(self, small_spd):
        lmin, lmax = gershgorin_bounds(small_spd)
        eigvals = np.linalg.eigvalsh(small_spd.to_dense())
        assert lmin <= eigvals.min() + 1e-12
        assert lmax >= eigvals.max() - 1e-12
        assert lmin > 0  # diagonally dominant generator


class TestChebyshev:
    def test_solves_system(self, small_spd):
        b, x_true = gen.make_rhs_with_solution(small_spd, seed=51)
        result = chebyshev(
            small_spd, b, options=SolveOptions(tol=1e-9, max_iterations=3000)
        )
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-5)

    def test_no_dot_products_in_loop(self, small_spd):
        """Chebyshev's selling point: one SpMV, no reductions beyond the
        convergence check."""
        b = gen.make_rhs(small_spd, seed=52)
        result = chebyshev(small_spd, b)
        # Vector FLOPs are only norms (1/iter) + AXPYs (3/iter):
        # far fewer reductions than CG's 3 dots + norm per iteration.
        assert result.flops["spmv"] > 0
        assert result.flops["sptrsv"] == 0

    def test_tighter_bounds_converge_faster(self, small_spd):
        b = gen.make_rhs(small_spd, seed=53)
        eigvals = np.linalg.eigvalsh(small_spd.to_dense())
        exact = (float(eigvals.min()), float(eigvals.max()))
        loose = chebyshev(small_spd, b)
        tight = chebyshev(small_spd, b, bounds=exact)
        assert tight.converged
        assert tight.iterations <= loose.iterations

    def test_rejects_bad_bounds(self, small_spd):
        b = gen.make_rhs(small_spd, seed=54)
        with pytest.raises(ReproError):
            chebyshev(small_spd, b, bounds=(-1.0, 2.0))
        with pytest.raises(ReproError):
            chebyshev(small_spd, b, bounds=(3.0, 2.0))

    def test_initial_guess(self, small_spd):
        b, x_true = gen.make_rhs_with_solution(small_spd, seed=55)
        result = chebyshev(small_spd, b, x0=x_true)
        assert result.converged
        assert result.iterations == 0


class TestBlockJacobi:
    def test_block_size_one_is_jacobi(self, small_spd, rng):
        r = rng.standard_normal(small_spd.n_rows)
        blocked = BlockJacobiPreconditioner(small_spd, block_size=1)
        plain = JacobiPreconditioner(small_spd)
        assert np.allclose(blocked.apply(r), plain.apply(r))

    def test_apply_inverts_blocks(self, small_spd, rng):
        block_size = 5
        precond = BlockJacobiPreconditioner(small_spd, block_size)
        r = rng.standard_normal(small_spd.n_rows)
        z = precond.apply(r)
        dense = small_spd.to_dense()
        for start in range(0, small_spd.n_rows, block_size):
            end = min(start + block_size, small_spd.n_rows)
            block = dense[start:end, start:end]
            assert np.allclose(block @ z[start:end], r[start:end])

    def test_improves_pcg_over_jacobi(self):
        matrix = gen.block_dense_spd(8, 8, coupling_per_block=2, seed=61)
        b = gen.make_rhs(matrix, seed=62)
        jacobi = pcg(matrix, b, JacobiPreconditioner(matrix))
        blocked = pcg(matrix, b, BlockJacobiPreconditioner(matrix, 8))
        assert blocked.converged
        # Blocks aligned with the matrix's dense blocks: fewer iters.
        assert blocked.iterations < jacobi.iterations

    def test_rejects_bad_block_size(self, small_spd):
        with pytest.raises(PreconditionerError):
            BlockJacobiPreconditioner(small_spd, block_size=0)

    def test_rejects_wrong_length(self, small_spd):
        precond = BlockJacobiPreconditioner(small_spd, 4)
        with pytest.raises(PreconditionerError):
            precond.apply(np.zeros(small_spd.n_rows + 1))

"""Tests for the synthetic generators, suite, properties, and MM I/O."""

import numpy as np
import pytest

from repro.sparse import (
    bandwidth,
    has_full_diagonal,
    is_lower_triangular,
    is_symmetric,
    is_upper_triangular,
    matrix_footprint_bytes,
    nnz_per_row_stats,
    read_matrix_market,
    vector_footprint_bytes,
    write_matrix_market,
)
from repro.sparse import generators as gen
from repro.sparse.properties import pcg_working_set_bytes
from repro.sparse.suite import (
    REPRESENTATIVE,
    azul_suite,
    get_suite_matrix,
    representative_suite,
    suite_inventory,
    suite_names,
)


def _assert_spd(matrix):
    """SPD check: symmetric and positive eigenvalues (dense, small only)."""
    dense = matrix.to_dense()
    assert np.allclose(dense, dense.T)
    eigvals = np.linalg.eigvalsh(dense)
    assert eigvals.min() > 0


class TestGenerators:
    def test_tridiagonal_spd(self):
        matrix = gen.tridiagonal_spd(20)
        _assert_spd(matrix)
        assert bandwidth(matrix) == 1

    def test_grid_2d_structure(self):
        matrix = gen.grid_laplacian_2d(5, 4)
        assert matrix.shape == (20, 20)
        _assert_spd(matrix)
        stats = nnz_per_row_stats(matrix)
        assert stats.max == 5  # interior: 4 neighbors + diagonal

    def test_grid_3d_structure(self):
        matrix = gen.grid_laplacian_3d(3, 3, 3)
        assert matrix.shape == (27, 27)
        _assert_spd(matrix)
        assert nnz_per_row_stats(matrix).max == 7

    def test_banded(self):
        matrix = gen.banded_spd(40, 5, density=0.8, seed=1)
        _assert_spd(matrix)
        assert bandwidth(matrix) <= 5

    def test_fem_mesh(self):
        matrix = gen.random_geometric_fem(20, avg_degree=4, dofs_per_node=2)
        assert matrix.shape == (40, 40)
        _assert_spd(matrix)

    def test_fem_dofs_increase_density(self):
        one = gen.random_geometric_fem(25, avg_degree=4, dofs_per_node=1)
        three = gen.random_geometric_fem(25, avg_degree=4, dofs_per_node=3)
        assert (
            nnz_per_row_stats(three).mean > 2 * nnz_per_row_stats(one).mean
        )

    def test_block_dense(self):
        matrix = gen.block_dense_spd(4, 8, coupling_per_block=2, seed=5)
        assert matrix.shape == (32, 32)
        _assert_spd(matrix)
        assert nnz_per_row_stats(matrix).mean > 6  # dense blocks dominate

    def test_random_spd(self):
        matrix = gen.random_spd(50, nnz_per_row=5, seed=2)
        _assert_spd(matrix)

    def test_determinism(self):
        a = gen.random_spd(30, seed=9)
        b = gen.random_spd(30, seed=9)
        assert a.allclose(b)

    def test_rhs_from_known_solution(self, small_spd):
        b, x_true = gen.make_rhs_with_solution(small_spd, seed=3)
        assert np.allclose(small_spd.spmv(x_true), b)


class TestProperties:
    def test_symmetry_detection(self, small_spd, rng):
        assert is_symmetric(small_spd)
        from tests.conftest import random_csr

        assert not is_symmetric(random_csr(rng, 10, 10, 0.3))

    def test_triangularity(self, small_spd):
        lower = small_spd.lower_triangle()
        assert is_lower_triangular(lower)
        assert not is_upper_triangular(lower)
        assert is_upper_triangular(lower.transpose())

    def test_full_diagonal(self, small_spd):
        assert has_full_diagonal(small_spd)

    def test_footprints(self, small_spd):
        assert matrix_footprint_bytes(small_spd) == 12 * small_spd.nnz
        assert vector_footprint_bytes(100) == 800
        lower = small_spd.lower_triangle()
        working = pcg_working_set_bytes(small_spd, lower)
        assert working > matrix_footprint_bytes(small_spd)


class TestMatrixMarketIO:
    def test_roundtrip_general(self, small_spd, tmp_path):
        path = tmp_path / "m.mtx"
        write_matrix_market(path, small_spd)
        again = read_matrix_market(path)
        assert again.allclose(small_spd)

    def test_roundtrip_symmetric(self, small_spd, tmp_path):
        path = tmp_path / "m.mtx"
        write_matrix_market(path, small_spd, symmetric=True)
        again = read_matrix_market(path)
        assert again.allclose(small_spd)

    def test_symmetric_file_is_smaller(self, small_spd, tmp_path):
        full = tmp_path / "full.mtx"
        sym = tmp_path / "sym.mtx"
        write_matrix_market(full, small_spd)
        write_matrix_market(sym, small_spd, symmetric=True)
        assert sym.stat().st_size < full.stat().st_size

    def test_rejects_garbage(self, tmp_path):
        from repro.errors import MatrixFormatError

        path = tmp_path / "bad.mtx"
        path.write_text("not a matrix\n1 2 3\n")
        with pytest.raises(MatrixFormatError):
            read_matrix_market(path)


class TestSuite:
    def test_small_suite_has_twenty_entries(self):
        assert len(azul_suite("small")) == 20

    def test_representative_subset(self):
        names = [m.name for m in representative_suite()]
        assert names == list(REPRESENTATIVE)
        assert set(names) <= set(suite_names("small"))

    def test_all_small_matrices_build_spd(self):
        # Structural sanity on every suite member (cheap checks only).
        for entry in azul_suite("small"):
            matrix, b = get_suite_matrix(entry.name)
            assert matrix.shape[0] == matrix.shape[1]
            assert is_symmetric(matrix)
            assert has_full_diagonal(matrix)
            assert len(b) == matrix.n_rows

    def test_inventory_columns(self):
        inventory = suite_inventory("small")
        assert len(inventory) == 20
        for row in inventory:
            assert row["nnz"] > 0
            assert row["a_bytes"] == 12 * row["nnz"]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_suite_matrix("no_such_matrix")

    def test_scale_grows_matrix(self):
        small = get_suite_matrix("thermal2", scale=1, with_rhs=False)
        large = get_suite_matrix("thermal2", scale=2, with_rhs=False)
        assert large.n_rows > small.n_rows

    def test_sections(self):
        assert len(azul_suite("medium")) == 23
        assert len(azul_suite("large")) == 25
        assert len(azul_suite("all")) == 25
        with pytest.raises(ValueError):
            azul_suite("bogus")


class TestLargeSuiteSections:
    """The medium/large suite entries (Fig. 28's bigger machines) must
    also be well-formed; dense eigenchecks don't scale, so diagonal
    dominance certifies SPD."""

    @pytest.mark.parametrize(
        "name", ["af_shell8", "StocF-1465", "audikw_1",
                 "Flan_1565", "Queen_4147"],
    )
    def test_builds_spd_by_dominance(self, name):
        from repro.sparse import is_diagonally_dominant

        matrix = get_suite_matrix(name, with_rhs=False)
        assert matrix.shape[0] == matrix.shape[1]
        assert is_symmetric(matrix)
        assert is_diagonally_dominant(matrix)

    def test_large_entries_are_larger(self):
        small = get_suite_matrix("consph", with_rhs=False)
        large = get_suite_matrix("Flan_1565", with_rhs=False)
        assert large.nnz > 3 * small.nnz


class TestDiagonalDominance:
    def test_detects_dominance(self, small_spd):
        from repro.sparse import is_diagonally_dominant

        assert is_diagonally_dominant(small_spd)

    def test_detects_non_dominance(self):
        from repro.sparse import COOMatrix, coo_to_csr, is_diagonally_dominant

        weak = coo_to_csr(COOMatrix(
            [0, 0, 1, 1], [0, 1, 0, 1], [1.0, 5.0, 5.0, 1.0], (2, 2)
        ))
        assert not is_diagonally_dominant(weak)
